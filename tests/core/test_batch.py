"""Tests for the RAM-bounded batched pipeline (repro.core.batch)."""

import pytest

from repro.core.batch import BatchedLinker
from repro.core.linker import AliasLinker
from repro.errors import ConfigurationError


class TestConstruction:
    def test_batch_size_floor(self):
        with pytest.raises(ConfigurationError):
            BatchedLinker(batch_size=1)

    def test_k_must_be_below_batch_size(self):
        with pytest.raises(ConfigurationError):
            BatchedLinker(batch_size=10, k=10)

    @pytest.mark.parametrize("k", [0, -3])
    def test_non_positive_k_rejected_with_value(self, k):
        with pytest.raises(ConfigurationError) as excinfo:
            BatchedLinker(batch_size=10, k=k)
        assert str(k) in str(excinfo.value)

    @pytest.mark.parametrize("batch_size", [0, -5])
    def test_non_positive_batch_size_rejected_with_value(self,
                                                         batch_size):
        with pytest.raises(ConfigurationError) as excinfo:
            BatchedLinker(batch_size=batch_size)
        assert str(batch_size) in str(excinfo.value)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            BatchedLinker(threshold=-0.1)

    def test_link_before_fit(self, reddit_alter_egos):
        with pytest.raises(ConfigurationError):
            BatchedLinker().link(reddit_alter_egos.alter_egos[:1])

    def test_fit_empty(self):
        with pytest.raises(ConfigurationError):
            BatchedLinker().fit([])


class TestBatchedAgreement:
    def test_batched_matches_close_to_unbatched(self, reddit_alter_egos):
        """Section IV-J's claim: batching barely changes the result."""
        unknowns = reddit_alter_egos.alter_egos[:12]
        unbatched = AliasLinker(threshold=0.0)
        unbatched.fit(reddit_alter_egos.originals)
        plain = unbatched.link(unknowns)

        batched = BatchedLinker(batch_size=20, k=5, threshold=0.0)
        batched.fit(reddit_alter_egos.originals)
        chunked = batched.link(unknowns)

        plain_truth_hits = sum(
            reddit_alter_egos.truth.get(m.unknown_id) == m.candidate_id
            for m in plain.matches)
        chunked_truth_hits = sum(
            reddit_alter_egos.truth.get(m.unknown_id) == m.candidate_id
            for m in chunked.matches)
        assert abs(plain_truth_hits - chunked_truth_hits) <= 3

    def test_one_match_per_unknown(self, reddit_alter_egos):
        unknowns = reddit_alter_egos.alter_egos[:4]
        batched = BatchedLinker(batch_size=15, k=5, threshold=0.0)
        batched.fit(reddit_alter_egos.originals)
        result = batched.link(unknowns)
        assert len(result.matches) == 4
        assert {m.unknown_id for m in result.matches} == \
            {d.doc_id for d in unknowns}

    def test_small_corpus_single_batch(self, reddit_alter_egos):
        known = reddit_alter_egos.originals[:8]
        batched = BatchedLinker(batch_size=50, k=5, threshold=0.0)
        batched.fit(known)
        result = batched.link(reddit_alter_egos.alter_egos[:2])
        assert len(result.matches) == 2
