"""Unit tests for weekend/holiday arithmetic (repro.core.calendars)."""

import datetime as dt

import pytest

from repro.core import calendars as cal


class TestEaster:
    @pytest.mark.parametrize("year,month,day", [
        (2016, 3, 27), (2017, 4, 16), (2018, 4, 1), (2019, 4, 21),
        (2020, 4, 12), (2024, 3, 31),
    ])
    def test_known_easter_dates(self, year, month, day):
        assert cal.easter_sunday(year) == dt.date(year, month, day)


class TestThanksgiving:
    @pytest.mark.parametrize("year,day", [
        (2016, 24), (2017, 23), (2018, 22), (2019, 28), (2020, 26),
    ])
    def test_fourth_thursday(self, year, day):
        date = cal.thanksgiving(year)
        assert date == dt.date(year, 11, day)
        assert date.weekday() == 3  # Thursday


class TestWeekend:
    def test_saturday(self):
        # 2017-01-07 was a Saturday
        assert cal.is_weekend(cal.timestamp_at(2017, 1, 7, 12))

    def test_sunday(self):
        assert cal.is_weekend(cal.timestamp_at(2017, 1, 8, 12))

    def test_monday(self):
        assert not cal.is_weekend(cal.timestamp_at(2017, 1, 9, 12))

    def test_friday(self):
        assert not cal.is_weekend(cal.timestamp_at(2017, 1, 6, 12))

    def test_epoch_was_thursday(self):
        assert not cal.is_weekend(0)


class TestHolidays:
    def test_christmas(self):
        assert cal.is_holiday(cal.timestamp_at(2017, 12, 25, 9))

    def test_new_year(self):
        assert cal.is_holiday(cal.timestamp_at(2017, 1, 1, 0))

    def test_easter_2017(self):
        assert cal.is_holiday(cal.timestamp_at(2017, 4, 16, 10))

    def test_good_friday_2017(self):
        assert cal.is_holiday(cal.timestamp_at(2017, 4, 14, 10))

    def test_thanksgiving_2017(self):
        assert cal.is_holiday(cal.timestamp_at(2017, 11, 23, 18))

    def test_ordinary_day(self):
        assert not cal.is_holiday(cal.timestamp_at(2017, 3, 7, 12))


class TestIsExcluded:
    def test_weekend_excluded(self):
        assert cal.is_excluded(cal.timestamp_at(2017, 1, 7, 12))

    def test_weekday_holiday_excluded(self):
        # 2017-12-25 was a Monday
        assert cal.is_excluded(cal.timestamp_at(2017, 12, 25, 12))

    def test_plain_weekday_kept(self):
        assert not cal.is_excluded(cal.timestamp_at(2017, 3, 7, 12))

    def test_exclusion_rate_plausible_over_2017(self):
        """Roughly 2/7 of days plus a handful of holidays."""
        excluded = sum(
            cal.is_excluded(cal.timestamp_at(2017, 1, 1, 12)
                            + d * 86400)
            for d in range(365))
        assert 104 <= excluded <= 125
