"""Unit tests for alias document construction (repro.core.documents)."""

import pytest

from repro.core.calendars import timestamp_at
from repro.core.documents import (
    build_document,
    documents_by_id,
    normalize_message,
    refine_forum,
)
from repro.forums.models import Forum, Message, UserRecord


def _weekday_ts(i):
    """The i-th usable weekday noon in 2017."""
    from repro.core.calendars import is_excluded

    ts = timestamp_at(2017, 1, 2, 12)
    found = 0
    while True:
        if not is_excluded(ts):
            if found == i:
                return ts
            found += 1
        ts += 86400


def _record(n_messages=50, words_per_message=40, alias="alice"):
    record = UserRecord(alias=alias, forum="f")
    filler = ("the vendors were shipping packages and people kept "
              "writing reviews about quality service experiences ")
    for i in range(n_messages):
        text = (filler * (words_per_message // 14 + 1))
        record.add(Message(
            message_id=f"m{i}", author=alias, text=text,
            timestamp=_weekday_ts(i), forum="f", section="s"))
    return record


class TestNormalizeMessage:
    def test_words_lemmatized_and_lowercased(self):
        text, words = normalize_message("The vendors WERE shipping")
        assert words == ["the", "vendor", "be", "ship"]

    def test_punct_kept_in_text(self):
        text, _ = normalize_message("yes, really!")
        assert "," in text and "!" in text

    def test_lemmatization_disabled(self):
        _, words = normalize_message("vendors were shipping",
                                     use_lemmatization=False)
        assert words == ["vendors", "were", "shipping"]

    def test_numbers_in_text_not_words(self):
        text, words = normalize_message("buy 25 grams")
        assert "25" in text
        assert "25" not in words


class TestBuildDocument:
    def test_word_budget_reached(self):
        doc = build_document(_record(), words_per_alias=300)
        assert doc is not None
        assert doc.n_words >= 300

    def test_too_few_words_rejected(self):
        doc = build_document(_record(n_messages=2),
                             words_per_alias=1000)
        assert doc is None

    def test_too_few_timestamps_rejected(self):
        doc = build_document(_record(n_messages=40),
                             words_per_alias=100,
                             min_timestamps=60)
        assert doc is None

    def test_activity_optional(self):
        doc = build_document(_record(n_messages=10),
                             words_per_alias=100,
                             min_timestamps=30,
                             require_activity=False)
        assert doc is not None
        assert doc.activity is None

    def test_longest_messages_selected_first(self):
        record = UserRecord(alias="bob", forum="f")
        long_text = "unique " + "long message words " * 30
        short_text = "short message with just these few words here ok"
        record.add(Message(message_id="a", author="bob",
                           text=short_text, timestamp=_weekday_ts(0),
                           forum="f", section="s"))
        record.add(Message(message_id="b", author="bob",
                           text=long_text, timestamp=_weekday_ts(1),
                           forum="f", section="s"))
        doc = build_document(record, words_per_alias=30,
                             require_activity=False, min_timestamps=0)
        assert doc is not None
        assert "unique" in doc.text
        assert "short" not in doc.text

    def test_doc_id_default(self):
        doc = build_document(_record(), words_per_alias=200)
        assert doc.doc_id == "f/alice"

    def test_custom_doc_id(self):
        doc = build_document(_record(), words_per_alias=200,
                             doc_id="custom/id")
        assert doc.doc_id == "custom/id"

    def test_activity_profile_built(self):
        doc = build_document(_record(n_messages=60),
                             words_per_alias=100)
        assert doc.activity is not None
        assert doc.activity[12] == pytest.approx(1.0)

    def test_disclosures_aggregated(self):
        record = _record(n_messages=40)
        record.messages[0] = Message(
            message_id="d", author="alice",
            text=record.messages[0].text,
            timestamp=record.messages[0].timestamp,
            forum="f", section="s",
            metadata={"disclosures": {"age": "27"}})
        doc = build_document(record, words_per_alias=100)
        assert doc.metadata["disclosures"]["age"] == ["27"]

    def test_timestamps_sorted(self):
        doc = build_document(_record(), words_per_alias=100)
        assert list(doc.timestamps) == sorted(doc.timestamps)


class TestRefineForum:
    def test_refinement_floors_applied(self):
        forum = Forum(name="f")
        rich = _record(n_messages=60, alias="rich")
        poor = _record(n_messages=3, alias="poor")
        forum.users["rich"] = rich
        forum.users["poor"] = poor
        docs = refine_forum(forum, words_per_alias=300)
        assert [d.alias for d in docs] == ["rich"]

    def test_refined_world_counts(self, polished_reddit):
        docs = refine_forum(polished_reddit, words_per_alias=600)
        assert 0 < len(docs) <= polished_reddit.n_users


class TestDocumentsById:
    def test_index_built(self):
        doc = build_document(_record(), words_per_alias=100)
        index = documents_by_id([doc])
        assert index[doc.doc_id] is doc

    def test_duplicate_rejected(self):
        doc = build_document(_record(), words_per_alias=100)
        with pytest.raises(ValueError):
            documents_by_id([doc, doc])
