"""Unit tests for feature extraction (repro.core.features)."""

import numpy as np
import pytest

from repro.config import FINAL_FEATURES, FeatureBudget
from repro.core.documents import AliasDocument
from repro.core.features import (
    DIGIT_CHARS,
    PUNCTUATION_CHARS,
    SPECIAL_CHARS,
    DocumentEncoder,
    FeatureExtractor,
    FeatureWeights,
    frequency_features,
)
from repro.errors import ConfigurationError, NotFittedError


def _doc(doc_id, text, activity_hour=None):
    words = tuple(w for w in text.lower().split() if w.isalpha())
    activity = None
    if activity_hour is not None:
        activity = np.zeros(24)
        activity[activity_hour] = 1.0
    return AliasDocument(
        doc_id=doc_id, alias=doc_id, forum="f", text=text,
        words=words, timestamps=(), activity=activity)


DOCS = [
    _doc("a", "the quick brown fox jumps over the lazy dog", 3),
    _doc("b", "the slow green turtle walks under the happy dog", 3),
    _doc("c", "completely different vocabulary appears in here", 15),
]


class TestTableIIInventories:
    def test_punctuation_count_is_11(self):
        assert len(PUNCTUATION_CHARS) == 11

    def test_digit_count_is_10(self):
        assert len(DIGIT_CHARS) == 10

    def test_special_count_is_21(self):
        assert len(SPECIAL_CHARS) == 21

    def test_no_overlap_between_inventories(self):
        all_chars = PUNCTUATION_CHARS + DIGIT_CHARS + SPECIAL_CHARS
        assert len(all_chars) == len(set(all_chars)) == 42


class TestFrequencyFeatures:
    def test_counts_normalized_by_length(self):
        features = frequency_features("a.b.")
        dot_index = PUNCTUATION_CHARS.index(".")
        assert features[dot_index] == pytest.approx(2 / 4)

    def test_empty_text(self):
        assert np.allclose(frequency_features(""), 0.0)

    def test_digits_counted(self):
        features = frequency_features("123")
        for digit in "123":
            idx = len(PUNCTUATION_CHARS) + DIGIT_CHARS.index(digit)
            assert features[idx] > 0


class TestFeatureWeights:
    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureWeights(text=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureWeights(text=0, frequencies=0, activity=0)

    def test_without_activity(self):
        weights = FeatureWeights().without_activity()
        assert weights.activity == 0.0


class TestDocumentEncoder:
    def test_profiles_cached(self):
        encoder = DocumentEncoder()
        first = encoder.word_profile(DOCS[0])
        second = encoder.word_profile(DOCS[0])
        assert first is second

    def test_drop_clears_cache(self):
        encoder = DocumentEncoder()
        first = encoder.word_profile(DOCS[0])
        encoder.drop([DOCS[0].doc_id])
        second = encoder.word_profile(DOCS[0])
        assert first is not second

    def test_shared_vocab_consistent(self):
        encoder = DocumentEncoder()
        profile_a = encoder.word_profile(DOCS[0])
        profile_b = encoder.word_profile(DOCS[1])
        # "the" appears in both docs: codes must intersect
        assert np.intersect1d(profile_a.codes, profile_b.codes).size > 0


class TestFeatureExtractor:
    def test_transform_before_fit_raises(self):
        extractor = FeatureExtractor(FINAL_FEATURES)
        with pytest.raises(NotFittedError):
            extractor.transform(DOCS)

    def test_fit_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureExtractor(FINAL_FEATURES).fit([])

    def test_rows_unit_norm(self):
        extractor = FeatureExtractor(FINAL_FEATURES)
        matrix = extractor.fit_transform(DOCS)
        norms = np.sqrt(np.asarray(
            matrix.multiply(matrix).sum(axis=1))).ravel()
        assert np.allclose(norms, 1.0)

    def test_similar_docs_score_higher(self):
        from repro.core.similarity import cosine_similarity

        extractor = FeatureExtractor(FINAL_FEATURES,
                                     use_activity=False)
        matrix = extractor.fit_transform(DOCS)
        sims = cosine_similarity(matrix, matrix)
        assert sims[0, 1] > sims[0, 2]

    def test_budget_caps_vocabulary(self):
        budget = FeatureBudget(word_ngrams=5, char_ngrams=7)
        extractor = FeatureExtractor(budget, use_activity=False)
        extractor.fit(DOCS)
        sizes = extractor.vocabulary_sizes()
        assert sizes["word_ngrams"] == 5
        assert sizes["char_ngrams"] == 7

    def test_activity_block_effect(self):
        from repro.core.similarity import cosine_similarity

        with_act = FeatureExtractor(
            FINAL_FEATURES,
            weights=FeatureWeights(activity=2.0)).fit_transform(DOCS)
        sims = cosine_similarity(with_act, with_act)
        # docs a and b share the activity hour, c does not
        assert sims[0, 1] > sims[0, 2]

    def test_doc_without_activity_gets_zero_block(self):
        docs = [DOCS[0], _doc("d", "no activity profile here at all")]
        extractor = FeatureExtractor(FINAL_FEATURES)
        matrix = extractor.fit_transform(docs)
        assert matrix.shape[0] == 2  # no crash, both vectorized

    def test_vocabulary_sizes_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            FeatureExtractor(FINAL_FEATURES).vocabulary_sizes()

    def test_shared_encoder_reused(self):
        encoder = DocumentEncoder()
        a = FeatureExtractor(FINAL_FEATURES, encoder=encoder)
        b = FeatureExtractor(FeatureBudget(word_ngrams=10,
                                           char_ngrams=10),
                             encoder=encoder)
        a.fit(DOCS)
        b.fit(DOCS)  # second fit reuses cached profiles
        assert a.encoder is b.encoder
