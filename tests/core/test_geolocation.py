"""Tests for timezone geolocation (repro.core.geolocation)."""

import numpy as np
import pytest

from repro.core.geolocation import (
    DIURNAL_TEMPLATE,
    TimezoneEstimator,
    crowd_offset,
)
from repro.errors import ConfigurationError


class TestConstruction:
    def test_default_template_is_distribution(self):
        assert DIURNAL_TEMPLATE.shape == (24,)
        assert DIURNAL_TEMPLATE.sum() == pytest.approx(1.0)

    def test_wrong_template_shape(self):
        with pytest.raises(ConfigurationError):
            TimezoneEstimator(template=[1.0] * 10)

    def test_negative_template(self):
        bad = [-1.0] + [1.0] * 23
        with pytest.raises(ConfigurationError):
            TimezoneEstimator(template=bad)


class TestExactRecovery:
    @pytest.mark.parametrize("offset", [-11, -8, -5, -1, 0, 2, 5, 12])
    def test_clean_profile_recovered_exactly(self, offset):
        """A noiseless shifted template must be located exactly."""
        profile = np.roll(DIURNAL_TEMPLATE, -offset)
        estimate = TimezoneEstimator().estimate(profile)
        assert estimate.utc_offset == offset
        assert estimate.correlation == pytest.approx(1.0)

    def test_wrong_profile_shape(self):
        with pytest.raises(ConfigurationError):
            TimezoneEstimator().estimate([0.5, 0.5])

    def test_ranking_sorted_and_complete(self):
        estimate = TimezoneEstimator().estimate(DIURNAL_TEMPLATE)
        assert len(estimate.ranking) == 24
        correlations = [c for _, c in estimate.ranking]
        assert correlations == sorted(correlations, reverse=True)
        assert estimate.top(3)[0] == estimate.utc_offset


class TestNoisyRecovery:
    def test_noisy_profile_close(self):
        rng = np.random.default_rng(5)
        profile = np.roll(DIURNAL_TEMPLATE, 6)  # offset -6
        noisy = profile + rng.uniform(0, 0.01, size=24)
        noisy = noisy / noisy.sum()
        estimate = TimezoneEstimator().estimate(noisy)
        assert abs(estimate.utc_offset - (-6)) <= 1

    def test_flat_profile_low_confidence(self):
        estimate = TimezoneEstimator().estimate(np.full(24, 1 / 24))
        assert estimate.correlation < 0.3


class TestOnSyntheticWorld:
    def test_recovers_persona_timezones_roughly(self, world):
        """End-to-end: estimated offsets correlate with the planted
        persona timezones (individual profiles are noisy; the claim is
        population-level, as in the ICDCS 2018 antecedent)."""
        from repro.core.activity import try_activity_profile

        estimator = TimezoneEstimator()
        errors = []
        for persona in world.personas.values():
            alias = persona.alias_on("reddit")
            if alias is None:
                continue
            record = world.forums["reddit"].users.get(alias)
            if record is None:
                continue
            profile = try_activity_profile(record.timestamps,
                                           min_timestamps=30)
            if profile is None:
                continue
            estimate = estimator.estimate(profile)
            delta = abs(estimate.utc_offset
                        - persona.habits.timezone_offset)
            errors.append(min(delta, 24 - delta))
        assert len(errors) >= 5
        # individual personas have idiosyncratic peaks, so exact
        # recovery is impossible; but estimates must beat chance
        # (uniform guessing gives a mean circular error of 6h)
        assert float(np.mean(errors)) < 6.0


class TestCrowdOffset:
    def test_empty(self):
        assert crowd_offset([]) is None

    def test_mode_wins(self):
        est = TimezoneEstimator()
        profiles = [np.roll(DIURNAL_TEMPLATE, -5)] * 3 + \
                   [np.roll(DIURNAL_TEMPLATE, -1)]
        estimates = est.estimate_many(profiles)
        assert crowd_offset(estimates) == 5
