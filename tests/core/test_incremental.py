"""Tests for the incremental linker (repro.core.incremental)."""

import pytest

from repro.core.incremental import IncrementalLinker
from repro.core.linker import AliasLinker
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def split_known(reddit_alter_egos):
    """Initial corpus + a batch to add later."""
    originals = reddit_alter_egos.originals
    cut = max(4, len(originals) * 3 // 4)
    return originals[:cut], originals[cut:]


class TestLifecycle:
    def test_invalid_refit_after(self):
        with pytest.raises(ConfigurationError):
            IncrementalLinker(refit_after=0)

    @pytest.mark.parametrize("k", [0, -2])
    def test_non_positive_k_rejected_eagerly(self, k):
        with pytest.raises(ConfigurationError) as excinfo:
            IncrementalLinker(k=k)
        assert str(k) in str(excinfo.value)

    def test_invalid_threshold_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            IncrementalLinker(threshold=2.0)

    def test_link_before_fit(self, reddit_alter_egos):
        with pytest.raises(NotFittedError):
            IncrementalLinker().link(reddit_alter_egos.alter_egos[:1])

    def test_add_before_fit(self, reddit_alter_egos):
        with pytest.raises(NotFittedError):
            IncrementalLinker().add_known(
                reddit_alter_egos.originals[:1])

    def test_fit_empty(self):
        with pytest.raises(ConfigurationError):
            IncrementalLinker().fit([])

    def test_duplicate_addition_rejected(self, split_known):
        initial, extra = split_known
        linker = IncrementalLinker().fit(initial)
        with pytest.raises(ConfigurationError):
            linker.add_known([initial[0]])

    def test_staleness_counter(self, split_known):
        initial, extra = split_known
        if not extra:
            pytest.skip("fixture too small")
        linker = IncrementalLinker(refit_after=len(extra)).fit(initial)
        assert not linker.stale
        linker.add_known(extra)
        assert linker.added_since_fit == len(extra)
        assert linker.stale
        linker.refit()
        assert not linker.stale
        assert linker.n_known == len(initial) + len(extra)


class TestConsistency:
    def test_added_aliases_are_findable(self, reddit_alter_egos,
                                        split_known):
        """An alter ego whose original arrives incrementally must
        still be matched to it."""
        initial, extra = split_known
        if not extra:
            pytest.skip("fixture too small")
        extra_ids = {d.doc_id for d in extra}
        # alter egos whose true author is in the extra batch
        queries = [
            a for a in reddit_alter_egos.alter_egos
            if reddit_alter_egos.truth[a.doc_id] in extra_ids
        ]
        if not queries:
            pytest.skip("no queries target the extra batch")
        linker = IncrementalLinker(threshold=0.0).fit(initial)
        linker.add_known(extra)
        result = linker.link(queries)
        hits = sum(
            reddit_alter_egos.truth[m.unknown_id] == m.candidate_id
            for m in result.matches)
        assert hits >= len(queries) // 2

    def test_close_to_full_refit(self, reddit_alter_egos,
                                 split_known):
        """The frozen-space approximation must track a full refit."""
        initial, extra = split_known
        if not extra:
            pytest.skip("fixture too small")
        queries = reddit_alter_egos.alter_egos[:10]

        incremental = IncrementalLinker(threshold=0.0).fit(initial)
        incremental.add_known(extra)
        inc_matches = incremental.link(queries).matches

        full = AliasLinker(threshold=0.0)
        full.fit(initial + extra)
        full_matches = full.link(queries).matches

        agree = sum(
            a.candidate_id == b.candidate_id
            for a, b in zip(inc_matches, full_matches))
        assert agree >= len(queries) - 2

    def test_refit_matches_full_fit_exactly(self, reddit_alter_egos,
                                            split_known):
        initial, extra = split_known
        if not extra:
            pytest.skip("fixture too small")
        queries = reddit_alter_egos.alter_egos[:5]
        incremental = IncrementalLinker(threshold=0.0).fit(initial)
        incremental.add_known(extra)
        incremental.refit()
        inc_matches = incremental.link(queries).matches
        full = AliasLinker(threshold=0.0)
        full.fit(initial + extra)
        full_matches = full.link(queries).matches
        assert [m.candidate_id for m in inc_matches] == \
            [m.candidate_id for m in full_matches]
        for a, b in zip(inc_matches, full_matches):
            assert a.score == pytest.approx(b.score)


class TestIncrementalIndex:
    """add_known under stage1="invindex" extends the live index
    through its delta segment instead of rebuilding it."""

    def test_add_known_extends_index_in_place(self, reddit_alter_egos,
                                              split_known):
        initial, extra = split_known
        if not extra:
            pytest.skip("fixture too small")
        linker = IncrementalLinker(threshold=0.0, stage1="invindex",
                                   shards=2)
        linker.fit(initial)
        reducer = linker._linker.reducer
        index_before = reducer._index
        assert index_before is not None
        linker.add_known(extra)
        # Same index object, grown — not a from-scratch rebuild.
        # (On a corpus this small the append may immediately fold
        # into the main segment; the in-place growth is the claim.)
        assert reducer._index is index_before
        assert reducer._index.n_docs == len(initial) + len(extra)
        assert reducer._index.bounds[-1] == len(initial) + len(extra)

    def test_add_known_matches_rebuilt_index(self, reddit_alter_egos,
                                             split_known):
        initial, extra = split_known
        if not extra:
            pytest.skip("fixture too small")
        unknowns = reddit_alter_egos.alter_egos[:8]
        linker = IncrementalLinker(threshold=0.0, stage1="invindex",
                                   shards=2)
        linker.fit(initial)
        linker.add_known(extra)
        reduced = linker._linker.reducer.reduce(unknowns)

        fresh = AliasLinker(threshold=0.0, stage1="invindex", shards=2)
        fresh.reducer.extractor = linker._linker.reducer.extractor
        fresh.reducer._known = linker._linker.reducer._known
        fresh.reducer._known_matrix = \
            linker._linker.reducer._known_matrix
        fresh.reducer.rebuild_index()
        assert reduced == fresh.reducer.reduce(unknowns)

    def test_build_jobs_threaded_through(self, split_known):
        initial, _ = split_known
        linker = IncrementalLinker(build_jobs=2)
        linker.fit(initial)
        assert linker._linker.reducer.build_jobs == 2
