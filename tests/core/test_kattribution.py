"""Tests for search-space reduction (repro.core.kattribution)."""

import pytest

from repro.config import FeatureBudget
from repro.core.kattribution import KAttributor
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def fitted(reddit_alter_egos):
    attributor = KAttributor(k=10)
    attributor.fit(reddit_alter_egos.originals)
    return attributor


class TestConstruction:
    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            KAttributor(k=0)

    def test_reduce_before_fit_raises(self, reddit_alter_egos):
        with pytest.raises(NotFittedError):
            KAttributor().reduce(reddit_alter_egos.alter_egos[:1])

    def test_fit_empty_raises(self):
        with pytest.raises(ConfigurationError):
            KAttributor().fit([])


class TestReduce(object):
    def test_candidate_sets_have_k_entries(self, fitted,
                                           reddit_alter_egos):
        results = fitted.reduce(reddit_alter_egos.alter_egos[:5])
        for candidates in results:
            assert len(candidates.documents) == 10
            assert len(candidates.scores) == 10

    def test_scores_descending(self, fitted, reddit_alter_egos):
        results = fitted.reduce(reddit_alter_egos.alter_egos[:5])
        for candidates in results:
            scores = list(candidates.scores)
            assert scores == sorted(scores, reverse=True)

    def test_true_author_usually_captured(self, fitted,
                                          reddit_alter_egos):
        """The point of 10-attribution: the real author is in the set."""
        results = fitted.reduce(reddit_alter_egos.alter_egos)
        hits = sum(
            candidates.contains(
                reddit_alter_egos.truth[candidates.unknown.doc_id])
            for candidates in results)
        assert hits / len(results) > 0.8

    def test_contains_helper(self, fitted, reddit_alter_egos):
        results = fitted.reduce(reddit_alter_egos.alter_egos[:1])
        present = results[0].documents[0].doc_id
        assert results[0].contains(present)
        assert not results[0].contains("f/nobody")


class TestAccuracyAtK:
    def test_accuracy_monotone_in_k(self, fitted, reddit_alter_egos):
        acc = fitted.accuracy_at_k(reddit_alter_egos.alter_egos,
                                   reddit_alter_egos.truth,
                                   ks=(1, 5, 10))
        assert acc[1] <= acc[5] <= acc[10]

    def test_unknowns_without_truth_skipped(self, fitted,
                                            reddit_alter_egos):
        acc = fitted.accuracy_at_k(reddit_alter_egos.alter_egos, {},
                                   ks=(1,))
        assert acc[1] == 0.0

    def test_activity_feature_matters_at_small_text(
            self, reddit_alter_egos):
        """Fig. 4's claim, on the small fixture: adding the daily
        activity profile must not collapse accuracy, and the two
        configurations must actually differ."""
        with_activity = KAttributor(k=10, use_activity=True)
        with_activity.fit(reddit_alter_egos.originals)
        acc_all = with_activity.accuracy_at_k(
            reddit_alter_egos.alter_egos, reddit_alter_egos.truth,
            ks=(10,))
        text_only = KAttributor(k=10, use_activity=False)
        text_only.fit(reddit_alter_egos.originals)
        acc_text = text_only.accuracy_at_k(
            reddit_alter_egos.alter_egos, reddit_alter_egos.truth,
            ks=(10,))
        assert acc_all[10] >= acc_text[10] - 0.05
