"""Tests for search-space reduction (repro.core.kattribution)."""

import pytest

from repro.config import FeatureBudget
from repro.core.kattribution import KAttributor
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def fitted(reddit_alter_egos):
    attributor = KAttributor(k=10)
    attributor.fit(reddit_alter_egos.originals)
    return attributor


class TestConstruction:
    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            KAttributor(k=0)

    def test_reduce_before_fit_raises(self, reddit_alter_egos):
        with pytest.raises(NotFittedError):
            KAttributor().reduce(reddit_alter_egos.alter_egos[:1])

    def test_fit_empty_raises(self):
        with pytest.raises(ConfigurationError):
            KAttributor().fit([])


class TestReduce(object):
    def test_candidate_sets_have_k_entries(self, fitted,
                                           reddit_alter_egos):
        results = fitted.reduce(reddit_alter_egos.alter_egos[:5])
        for candidates in results:
            assert len(candidates.documents) == 10
            assert len(candidates.scores) == 10

    def test_scores_descending(self, fitted, reddit_alter_egos):
        results = fitted.reduce(reddit_alter_egos.alter_egos[:5])
        for candidates in results:
            scores = list(candidates.scores)
            assert scores == sorted(scores, reverse=True)

    def test_true_author_usually_captured(self, fitted,
                                          reddit_alter_egos):
        """The point of 10-attribution: the real author is in the set."""
        results = fitted.reduce(reddit_alter_egos.alter_egos)
        hits = sum(
            candidates.contains(
                reddit_alter_egos.truth[candidates.unknown.doc_id])
            for candidates in results)
        assert hits / len(results) > 0.8

    def test_contains_helper(self, fitted, reddit_alter_egos):
        results = fitted.reduce(reddit_alter_egos.alter_egos[:1])
        present = results[0].documents[0].doc_id
        assert results[0].contains(present)
        assert not results[0].contains("f/nobody")


class TestAccuracyAtK:
    def test_accuracy_monotone_in_k(self, fitted, reddit_alter_egos):
        acc = fitted.accuracy_at_k(reddit_alter_egos.alter_egos,
                                   reddit_alter_egos.truth,
                                   ks=(1, 5, 10))
        assert acc[1] <= acc[5] <= acc[10]

    def test_unknowns_without_truth_skipped(self, fitted,
                                            reddit_alter_egos):
        acc = fitted.accuracy_at_k(reddit_alter_egos.alter_egos, {},
                                   ks=(1,))
        assert acc[1] == 0.0

    def test_activity_feature_matters_at_small_text(
            self, reddit_alter_egos):
        """Fig. 4's claim, on the small fixture: adding the daily
        activity profile must not collapse accuracy, and the two
        configurations must actually differ."""
        with_activity = KAttributor(k=10, use_activity=True)
        with_activity.fit(reddit_alter_egos.originals)
        acc_all = with_activity.accuracy_at_k(
            reddit_alter_egos.alter_egos, reddit_alter_egos.truth,
            ks=(10,))
        text_only = KAttributor(k=10, use_activity=False)
        text_only.fit(reddit_alter_egos.originals)
        acc_text = text_only.accuracy_at_k(
            reddit_alter_egos.alter_egos, reddit_alter_egos.truth,
            ks=(10,))
        assert acc_all[10] >= acc_text[10] - 0.05


class _FakeCounter:
    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class TestStage1Auto:
    def _fallback_total(self):
        from repro.obs.metrics import get_registry
        return get_registry().snapshot().get(
            "invindex_fallback_total", {}).get("value", 0)

    def test_auto_is_a_valid_choice(self):
        assert KAttributor(stage1="auto").stage1 == "auto"

    def test_active_defaults_blocked_before_fit(self):
        assert KAttributor(stage1="auto").active_stage1 == "blocked"

    def test_build_jobs_validated(self):
        with pytest.raises(ConfigurationError):
            KAttributor(build_jobs=0)

    def test_auto_resolves_dense_on_small_fixture(
            self, reddit_alter_egos):
        attributor = KAttributor(k=10, stage1="auto")
        attributor.fit(reddit_alter_egos.originals)
        assert attributor.active_stage1 == "dense"
        # A corpus the cost model routes to dense never pays for an
        # inverted index it would not use.
        assert attributor._index is None

    def test_auto_output_matches_blocked(self, reddit_alter_egos):
        auto = KAttributor(k=10, stage1="auto")
        auto.fit(reddit_alter_egos.originals)
        blocked = KAttributor(k=10, stage1="blocked")
        blocked.fit(reddit_alter_egos.originals)
        assert auto.reduce(reddit_alter_egos.alter_egos) \
            == blocked.reduce(reddit_alter_egos.alter_egos)

    def test_pathological_visited_trips_fallback(
            self, reddit_alter_egos, monkeypatch):
        """When the staged scan visits more postings than dense
        scoring would touch, the reducer must count a fallback and —
        under auto — demote itself to blocked for future batches,
        while the current batch stays exact."""
        import repro.core.kattribution as katt_mod

        attributor = KAttributor(k=10, stage1="auto")
        attributor.fit(reddit_alter_egos.originals)
        attributor._stage1_active = "invindex"
        attributor.rebuild_index()

        fake_visited, fake_dense = _FakeCounter(), _FakeCounter()
        real_top_k = attributor._index.top_k

        def noisy_top_k(*args, **kwargs):
            fake_visited.inc(100)
            fake_dense.inc(10)
            return real_top_k(*args, **kwargs)

        monkeypatch.setattr(attributor._index, "top_k", noisy_top_k)
        monkeypatch.setattr(katt_mod, "_IVX_VISITED", fake_visited)
        monkeypatch.setattr(katt_mod, "_IVX_DENSE", fake_dense)

        before = self._fallback_total()
        results = attributor.reduce(reddit_alter_egos.alter_egos)
        assert self._fallback_total() == before + 1
        assert attributor.active_stage1 == "blocked"

        blocked = KAttributor(k=10, stage1="blocked")
        blocked.fit(reddit_alter_egos.originals)
        assert results == blocked.reduce(reddit_alter_egos.alter_egos)
        # The demotion sticks: the next batch takes the blocked path
        # without consulting the index again.
        assert self._fallback_total() == before + 1
        assert attributor.reduce(reddit_alter_egos.alter_egos) \
            == results
        assert self._fallback_total() == before + 1

    def test_fixed_invindex_never_demotes(self, reddit_alter_egos,
                                          monkeypatch):
        import repro.core.kattribution as katt_mod

        attributor = KAttributor(k=10, stage1="invindex")
        attributor.fit(reddit_alter_egos.originals)

        fake_visited, fake_dense = _FakeCounter(), _FakeCounter()
        real_top_k = attributor._index.top_k

        def noisy_top_k(*args, **kwargs):
            fake_visited.inc(100)
            fake_dense.inc(10)
            return real_top_k(*args, **kwargs)

        monkeypatch.setattr(attributor._index, "top_k", noisy_top_k)
        monkeypatch.setattr(katt_mod, "_IVX_VISITED", fake_visited)
        monkeypatch.setattr(katt_mod, "_IVX_DENSE", fake_dense)

        before = self._fallback_total()
        attributor.reduce(reddit_alter_egos.alter_egos)
        # The counter still records the pathology ...
        assert self._fallback_total() == before + 1
        # ... but an explicit stage1 choice is honoured.
        assert attributor.active_stage1 == "invindex"
