"""Tests for the two-stage linker (repro.core.linker)."""

import pytest

from repro.core.linker import AliasLinker
from repro.core.threshold import matches_to_curve
from repro.errors import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def link_result(reddit_alter_egos):
    linker = AliasLinker(threshold=0.0)
    linker.fit(reddit_alter_egos.originals)
    return linker.link(reddit_alter_egos.alter_egos)


class TestConstruction:
    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            AliasLinker(threshold=1.5)

    @pytest.mark.parametrize("k", [0, -1, -10])
    def test_non_positive_k_rejected_with_value(self, k):
        with pytest.raises(ConfigurationError) as excinfo:
            AliasLinker(k=k)
        assert str(k) in str(excinfo.value)

    def test_link_before_fit(self, reddit_alter_egos):
        with pytest.raises(NotFittedError):
            AliasLinker().link(reddit_alter_egos.alter_egos[:1])


class TestLinkResult:
    def test_one_match_per_unknown(self, link_result,
                                   reddit_alter_egos):
        assert len(link_result.matches) == \
            len(reddit_alter_egos.alter_egos)

    def test_candidate_scores_have_k_entries(self, link_result):
        for scored in link_result.candidate_scores.values():
            assert len(scored) == 10

    def test_best_candidate_is_max_score(self, link_result):
        for match in link_result.matches:
            scored = link_result.candidate_scores[match.unknown_id]
            assert match.score == pytest.approx(
                max(s for _, s in scored))

    def test_threshold_zero_accepts_all(self, link_result):
        assert all(m.accepted for m in link_result.matches)

    def test_accuracy_high_on_alter_egos(self, link_result,
                                         reddit_alter_egos):
        correct = sum(
            reddit_alter_egos.truth.get(m.unknown_id) == m.candidate_id
            for m in link_result.matches)
        assert correct / len(link_result.matches) > 0.7

    def test_all_scored_pairs_iterates_everything(self, link_result):
        pairs = list(link_result.all_scored_pairs())
        assert len(pairs) == sum(
            len(v) for v in link_result.candidate_scores.values())

    def test_scores_in_unit_interval(self, link_result):
        for _, _, score in link_result.all_scored_pairs():
            assert 0.0 <= score <= 1.0 + 1e-9


class TestThresholding:
    def test_high_threshold_rejects(self, reddit_alter_egos):
        linker = AliasLinker(threshold=0.999999)
        linker.fit(reddit_alter_egos.originals)
        result = linker.link(reddit_alter_egos.alter_egos[:5])
        assert all(not m.accepted for m in result.matches)

    def test_precision_grows_with_threshold(self, link_result,
                                            reddit_alter_egos):
        curve = matches_to_curve(link_result.matches,
                                 reddit_alter_egos.truth)
        # precision at a stricter threshold >= precision at a looser one
        strict_p, strict_r = curve.at_threshold(curve.thresholds[0])
        loose_p, loose_r = curve.at_threshold(curve.thresholds[-1])
        assert strict_r <= loose_r
        assert strict_p >= loose_p - 1e-9


class TestNoReduction:
    def test_without_reduction_scores_everyone(self, reddit_alter_egos):
        linker = AliasLinker(threshold=0.0, use_reduction=False)
        linker.fit(reddit_alter_egos.originals)
        result = linker.link(reddit_alter_egos.alter_egos[:2])
        for scored in result.candidate_scores.values():
            assert len(scored) == len(reddit_alter_egos.originals)

    def test_link_one(self, reddit_alter_egos):
        linker = AliasLinker(threshold=0.0)
        linker.fit(reddit_alter_egos.originals)
        match = linker.link_one(reddit_alter_egos.alter_egos[0])
        assert match.unknown_id == \
            reddit_alter_egos.alter_egos[0].doc_id
