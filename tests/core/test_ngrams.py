"""Unit tests for the integer-coded n-gram engine (repro.core.ngrams)."""

from collections import Counter

import numpy as np
import pytest

from repro.core import ngrams
from repro.errors import ConfigurationError


class TestWordVocab:
    def test_intern_stable(self):
        vocab = ngrams.WordVocab()
        assert vocab.intern("hello") == vocab.intern("hello")

    def test_distinct_ids(self):
        vocab = ngrams.WordVocab()
        assert vocab.intern("a") != vocab.intern("b")

    def test_word_roundtrip(self):
        vocab = ngrams.WordVocab()
        word_id = vocab.intern("vendor")
        assert vocab.word(word_id) == "vendor"

    def test_len(self):
        vocab = ngrams.WordVocab()
        vocab.encode(["a", "b", "a"])
        assert len(vocab) == 2


class TestCharCodes:
    def test_counts_match_naive(self):
        text = "hello world hello"
        codes = ngrams.char_ngram_codes(text, orders=(2,))
        unique, counts = ngrams.count_codes(codes)
        naive = Counter(text[i:i + 2] for i in range(len(text) - 1))
        decoded = {ngrams.decode_char_code(int(c)): int(n)
                   for c, n in zip(unique, counts)}
        assert decoded == dict(naive)

    def test_all_orders_present(self):
        codes = ngrams.char_ngram_codes("abcdef")
        # orders 1..5 over 6 chars: 6+5+4+3+2 = 20 occurrences
        assert codes.size == 20

    def test_empty_text(self):
        assert ngrams.char_ngram_codes("").size == 0

    def test_non_latin_replaced(self):
        codes = ngrams.char_ngram_codes("日本", orders=(1,))
        decoded = {ngrams.decode_char_code(int(c)) for c in codes}
        assert decoded == {"?"}

    def test_decode_roundtrip(self):
        codes = ngrams.char_ngram_codes("xyz", orders=(3,))
        assert ngrams.decode_char_code(int(codes[0])) == "xyz"


class TestWordCodes:
    def test_counts_match_naive(self):
        tokens = "the cat sat on the mat the cat".split()
        vocab = ngrams.WordVocab()
        codes = ngrams.word_ngram_codes(tokens, vocab, orders=(2,))
        unique, counts = ngrams.count_codes(codes)
        naive = Counter(" ".join(tokens[i:i + 2])
                        for i in range(len(tokens) - 1))
        decoded = {ngrams.decode_word_code(int(c), vocab): int(n)
                   for c, n in zip(unique, counts)}
        assert decoded == dict(naive)

    def test_order_tags_distinguish(self):
        vocab = ngrams.WordVocab()
        codes1 = ngrams.word_ngram_codes(["a"], vocab, orders=(1,))
        codes2 = ngrams.word_ngram_codes(["a", "a"], vocab, orders=(2,))
        assert set(codes1.tolist()).isdisjoint(set(codes2.tolist()))

    def test_word_and_char_codes_never_collide(self):
        vocab = ngrams.WordVocab()
        word_codes = set(ngrams.word_ngram_codes(
            ["a", "b", "c"], vocab).tolist())
        char_codes = set(ngrams.char_ngram_codes("abc").tolist())
        assert word_codes.isdisjoint(char_codes)

    def test_three_gram_fits_uint64(self):
        vocab = ngrams.WordVocab()
        # force large ids
        for i in range(1000):
            vocab.intern(f"w{i}")
        codes = ngrams.word_ngram_codes(["w999", "w998", "w997"],
                                        vocab, orders=(3,))
        assert ngrams.decode_word_code(int(codes[0]), vocab) == \
            "w999 w998 w997"


class TestCodeCounts:
    def test_from_occurrences(self):
        codes = np.array([5, 3, 5, 5], dtype=np.uint64)
        profile = ngrams.CodeCounts.from_occurrences(codes)
        assert profile.codes.tolist() == [3, 5]
        assert profile.counts.tolist() == [1, 3]
        assert profile.total == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ngrams.CodeCounts(np.array([1], dtype=np.uint64),
                              np.array([1, 2]))


class TestMerge:
    def _profile(self, pairs):
        codes = np.array(sorted(pairs), dtype=np.uint64)
        counts = np.array([pairs[c] for c in sorted(pairs)],
                          dtype=np.int64)
        return ngrams.CodeCounts(codes, counts)

    def test_merge_counts(self):
        a = self._profile({1: 2, 2: 1})
        b = self._profile({2: 3, 5: 1})
        merged = ngrams.merge_counts([a, b])
        assert merged.codes.tolist() == [1, 2, 5]
        assert merged.counts.tolist() == [2, 4, 1]

    def test_merge_empty(self):
        merged = ngrams.merge_counts([])
        assert merged.codes.size == 0

    def test_document_frequencies_binary(self):
        a = self._profile({1: 10, 2: 1})
        b = self._profile({1: 99})
        df = ngrams.document_frequencies([a, b])
        assert dict(zip(df.codes.tolist(), df.counts.tolist())) == \
            {1: 2, 2: 1}


class TestSelectAndProject:
    def _profile(self, pairs):
        codes = np.array(sorted(pairs), dtype=np.uint64)
        counts = np.array([pairs[c] for c in sorted(pairs)],
                          dtype=np.int64)
        return ngrams.CodeCounts(codes, counts)

    def test_select_top_keeps_most_frequent(self):
        corpus = self._profile({1: 5, 2: 50, 3: 10})
        selected = ngrams.select_top(corpus, 2)
        assert sorted(selected.tolist()) == [2, 3]

    def test_select_top_returns_sorted(self):
        corpus = self._profile({9: 1, 1: 2, 5: 3})
        selected = ngrams.select_top(corpus, 3)
        assert selected.tolist() == sorted(selected.tolist())

    def test_select_all_when_budget_large(self):
        corpus = self._profile({1: 1, 2: 2})
        assert ngrams.select_top(corpus, 100).size == 2

    def test_select_deterministic_on_ties(self):
        corpus = self._profile({7: 1, 3: 1, 9: 1})
        a = ngrams.select_top(corpus, 2).tolist()
        b = ngrams.select_top(corpus, 2).tolist()
        assert a == b

    def test_select_zero_budget(self):
        corpus = self._profile({1: 1})
        assert ngrams.select_top(corpus, 0).size == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ngrams.select_top(self._profile({1: 1}), -1)

    def test_project_counts(self):
        profile = self._profile({1: 2, 3: 4, 8: 1})
        selected = np.array([3, 8, 9], dtype=np.uint64)
        cols, counts = ngrams.project_counts(profile, selected)
        assert cols.tolist() == [0, 1]
        assert counts.tolist() == [4, 1]

    def test_project_no_overlap(self):
        profile = self._profile({1: 1})
        selected = np.array([2], dtype=np.uint64)
        cols, counts = ngrams.project_counts(profile, selected)
        assert cols.size == 0

    def test_project_empty_selection(self):
        profile = self._profile({1: 1})
        cols, _ = ngrams.project_counts(
            profile, np.empty(0, dtype=np.uint64))
        assert cols.size == 0
