"""Unit tests for cosine similarity and ranking (repro.core.similarity)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.similarity import (
    cosine_pair,
    cosine_similarity,
    rank_of,
    top_k,
)


def _rows(*rows):
    return sparse.csr_matrix(np.array(rows, dtype=float))


class TestCosineSimilarity:
    def test_identical_unit_rows(self):
        a = _rows([1.0, 0.0])
        sims = cosine_similarity(a, a)
        assert sims[0, 0] == pytest.approx(1.0)

    def test_orthogonal_rows(self):
        sims = cosine_similarity(_rows([1, 0]), _rows([0, 1]))
        assert sims[0, 0] == pytest.approx(0.0)

    def test_unnormalized_inputs(self):
        sims = cosine_similarity(_rows([2, 0]), _rows([5, 0]),
                                 assume_normalized=False)
        assert sims[0, 0] == pytest.approx(1.0)

    def test_shape(self):
        sims = cosine_similarity(_rows([1, 0], [0, 1]),
                                 _rows([1, 0], [0, 1], [1, 1]))
        assert sims.shape == (2, 3)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(_rows([1, 0]), _rows([1, 0, 0]))

    def test_cosine_pair(self):
        assert cosine_pair(_rows([1, 0]), _rows([1, 0])) == \
            pytest.approx(1.0)


class TestTopK:
    SCORES = np.array([
        [0.1, 0.9, 0.5, 0.7],
        [0.8, 0.2, 0.6, 0.4],
    ])

    def test_indices_and_values_sorted(self):
        indices, values = top_k(self.SCORES, 2)
        assert indices[0].tolist() == [1, 3]
        assert values[0].tolist() == [0.9, 0.7]
        assert indices[1].tolist() == [0, 2]

    def test_k_clamped_to_columns(self):
        indices, _ = top_k(self.SCORES, 10)
        assert indices.shape == (2, 4)

    def test_k_one(self):
        indices, values = top_k(self.SCORES, 1)
        assert indices[:, 0].tolist() == [1, 0]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k(self.SCORES, 0)

    def test_full_k_is_argsort(self):
        indices, _ = top_k(self.SCORES, 4)
        expected = np.argsort(-self.SCORES, axis=1)
        assert np.array_equal(indices, expected)


class TestRankOf:
    def test_best_is_rank_one(self):
        row = np.array([0.2, 0.9, 0.5])
        assert rank_of(row, 1) == 1

    def test_worst_rank(self):
        row = np.array([0.2, 0.9, 0.5])
        assert rank_of(row, 0) == 3

    def test_ties_pessimistic(self):
        row = np.array([0.5, 0.5, 0.9])
        # index 1 ties with index 0 which precedes it
        assert rank_of(row, 1) == 3
        assert rank_of(row, 0) == 2
