"""Reply-graph / thread-structure features (repro.core.structure)."""

import math

import numpy as np
import pytest

from repro.core.structure import (
    STRUCTURE_DIM,
    STRUCTURE_FEATURE_NAMES,
    merge_profile_maps,
    structure_profiles,
)
from repro.forums.models import Forum, Message, Thread

HOUR = 3600


def _msg(mid, author, ts, parent=None):
    return Message(message_id=mid, author=author, text="hello there",
                   timestamp=ts, forum="f", section="s",
                   parent_id=parent)


@pytest.fixture()
def forum():
    """Two threads with a small reply graph plus one thread-less user.

    t1: alice posts m1; bob replies fast (m2); alice replies slowly
    (m3); carol posts without replying (m4).  t2: alice alone (m5).
    dave posts outside any thread and never replies.
    """
    f = Forum(name="f")
    f.add_message(_msg("m1", "alice", 0))
    f.add_message(_msg("m2", "bob", HOUR // 2, parent="m1"))
    f.add_message(_msg("m3", "alice", 2 * HOUR, parent="m2"))
    f.add_message(_msg("m4", "carol", HOUR))
    f.add_message(_msg("m5", "alice", 24 * HOUR))
    f.add_message(_msg("m6", "dave", 3 * HOUR))
    f.add_thread(Thread(thread_id="t1", forum="f", section="s",
                        title="t1", author="alice",
                        message_ids=("m1", "m2", "m3", "m4")))
    f.add_thread(Thread(thread_id="t2", forum="f", section="s",
                        title="t2", author="alice",
                        message_ids=("m5",)))
    return f


def _feature(vector, name):
    return vector[STRUCTURE_FEATURE_NAMES.index(name)]


class TestStructureProfiles:
    def test_every_user_gets_a_vector(self, forum):
        profiles = structure_profiles(forum)
        assert set(profiles) == {"alice", "bob", "carol", "dave"}
        for vector in profiles.values():
            assert vector.shape == (STRUCTURE_DIM,)
            assert (vector >= 0).all()

    def test_names_align_with_dim(self):
        assert len(STRUCTURE_FEATURE_NAMES) == STRUCTURE_DIM

    def test_threadless_user_is_zero(self, forum):
        """No structural evidence reads as the zero vector."""
        dave = structure_profiles(forum)["dave"]
        assert not dave.any()

    def test_reply_graph_counts(self, forum):
        profiles = structure_profiles(forum)
        alice, bob = profiles["alice"], profiles["bob"]
        # alice posted one reply (m3 -> bob) out of three messages
        # and received one (m2).
        assert _feature(alice, "replies_out") == math.log1p(1)
        assert _feature(alice, "replies_in") == math.log1p(1)
        assert _feature(alice, "reply_ratio") == pytest.approx(1 / 3)
        # alice <-> bob reply both ways: perfect reciprocity.
        assert _feature(alice, "reciprocity") == 1.0
        assert _feature(bob, "reciprocity") == 1.0

    def test_thread_features(self, forum):
        alice = structure_profiles(forum)["alice"]
        # alice participated in both threads and started both.
        assert _feature(alice, "threads") == math.log1p(2)
        assert _feature(alice, "root_ratio") == 1.0
        # two own messages in t1, one in t2.
        assert _feature(alice, "thread_burst") == pytest.approx(1.5)
        carol = structure_profiles(forum)["carol"]
        assert _feature(carol, "root_ratio") == 0.0

    def test_fast_follow(self, forum):
        profiles = structure_profiles(forum)
        # bob replied within 30 minutes; alice's one reply took 1.5h.
        assert _feature(profiles["bob"], "fast_follow") == 1.0
        assert _feature(profiles["alice"], "fast_follow") == 0.0

    def test_cadence_uses_within_thread_gaps(self, forum):
        alice = structure_profiles(forum)["alice"]
        # alice's consecutive posts in t1 are 2h apart -> 120 minutes.
        assert _feature(alice, "cadence") == \
            pytest.approx(math.log1p(120.0))

    def test_deterministic(self, forum):
        a = structure_profiles(forum)
        b = structure_profiles(forum)
        for alias in a:
            assert (a[alias] == b[alias]).all()

    def test_alias_prefix_rekeys(self, forum):
        plain = structure_profiles(forum)
        prefixed = structure_profiles(forum, alias_prefix="f/")
        assert set(prefixed) == {f"f/{alias}" for alias in plain}
        assert (prefixed["f/alice"] == plain["alice"]).all()


class TestMergeProfileMaps:
    def test_union_and_precedence(self):
        a = {"x": np.zeros(STRUCTURE_DIM)}
        b = {"x": np.ones(STRUCTURE_DIM),
             "y": np.full(STRUCTURE_DIM, 2.0)}
        merged = merge_profile_maps(a, b)
        assert set(merged) == {"x", "y"}
        assert merged["x"][0] == 1.0  # later map wins


class TestWorldIntegration:
    def test_synthetic_world_has_reply_structure(self, world):
        """The synth worlds carry reply chains dense enough that the
        family is informative, not a constant block."""
        from repro.core.documents import refine_forum

        tmg = world.forums["tmg"]
        profiles = structure_profiles(tmg)
        nonzero = [a for a, v in profiles.items() if v.any()]
        assert len(nonzero) >= 0.8 * len(profiles)
        documents = refine_forum(tmg, structure_profiles=profiles)
        assert documents
        for document in documents:
            assert document.structure is not None
            assert document.structure.shape == (STRUCTURE_DIM,)
