"""Unit tests for Tf-Idf weighting (repro.core.tfidf)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.tfidf import TfidfModel, l2_normalize_rows
from repro.errors import NotFittedError


def _counts():
    # 3 docs x 4 terms; term 0 in every doc, term 3 in one doc
    return sparse.csr_matrix(np.array([
        [2, 1, 0, 0],
        [1, 0, 3, 0],
        [5, 0, 0, 7],
    ], dtype=float))


class TestTfidfModel:
    def test_fit_computes_smooth_idf(self):
        model = TfidfModel().fit(_counts())
        n = 3
        df = np.array([3, 1, 1, 1])
        expected = np.log((1 + n) / (1 + df)) + 1
        assert np.allclose(model.idf, expected)

    def test_transform_rows_unit_norm(self):
        model = TfidfModel().fit(_counts())
        weighted = model.transform(_counts())
        norms = np.sqrt(np.asarray(
            weighted.multiply(weighted).sum(axis=1))).ravel()
        assert np.allclose(norms, 1.0)

    def test_rare_term_upweighted(self):
        model = TfidfModel().fit(_counts())
        weighted = model.transform(_counts()).toarray()
        # doc 2: term 0 count 5 (common), term 3 count 7 (rare)
        # rare term must dominate even more after idf
        ratio_before = 7 / 5
        ratio_after = weighted[2, 3] / weighted[2, 0]
        assert ratio_after > ratio_before

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TfidfModel().transform(_counts())

    def test_idf_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TfidfModel().idf

    def test_dimension_mismatch_rejected(self):
        model = TfidfModel().fit(_counts())
        with pytest.raises(ValueError):
            model.transform(sparse.csr_matrix((2, 9)))

    def test_fit_transform_equivalent(self):
        a = TfidfModel().fit_transform(_counts()).toarray()
        model = TfidfModel().fit(_counts())
        b = model.transform(_counts()).toarray()
        assert np.allclose(a, b)

    def test_input_not_mutated(self):
        counts = _counts()
        original = counts.toarray().copy()
        TfidfModel().fit_transform(counts)
        assert np.array_equal(counts.toarray(), original)


class TestL2Normalize:
    def test_unit_norms(self):
        matrix = sparse.csr_matrix(np.array([[3.0, 4.0], [1.0, 0.0]]))
        out = l2_normalize_rows(matrix).toarray()
        assert np.allclose(out[0], [0.6, 0.8])
        assert np.allclose(out[1], [1.0, 0.0])

    def test_zero_row_stays_zero(self):
        matrix = sparse.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        out = l2_normalize_rows(matrix).toarray()
        assert np.allclose(out[0], 0.0)

    def test_empty_matrix(self):
        out = l2_normalize_rows(sparse.csr_matrix((0, 5)))
        assert out.shape == (0, 5)
