"""Tests for threshold calibration (repro.core.threshold)."""

import pytest

from repro.core.linker import Match
from repro.core.threshold import ThresholdCalibrator, matches_to_curve
from repro.errors import ConfigurationError


def _match(uid, cid, score):
    return Match(unknown_id=uid, candidate_id=cid, score=score,
                 accepted=True, first_stage_score=score)


MATCHES = [
    _match("u1", "k1", 0.9),   # correct
    _match("u2", "k2", 0.8),   # correct
    _match("u3", "kX", 0.7),   # wrong
    _match("u4", "k4", 0.6),   # correct
    _match("u5", "kY", 0.3),   # wrong
]
TRUTH = {"u1": "k1", "u2": "k2", "u3": "k3", "u4": "k4", "u5": "k5"}


class TestMatchesToCurve:
    def test_curve_thresholds_descending(self):
        curve = matches_to_curve(MATCHES, TRUTH)
        assert list(curve.thresholds) == sorted(curve.thresholds,
                                                reverse=True)

    def test_perfect_prefix(self):
        curve = matches_to_curve(MATCHES, TRUTH)
        precision, recall = curve.at_threshold(0.8)
        assert precision == pytest.approx(1.0)
        assert recall == pytest.approx(2 / 5)

    def test_full_output_point(self):
        curve = matches_to_curve(MATCHES, TRUTH)
        precision, recall = curve.at_threshold(0.0)
        assert precision == pytest.approx(3 / 5)
        assert recall == pytest.approx(3 / 5)

    def test_explicit_n_positive(self):
        curve = matches_to_curve(MATCHES, TRUTH, n_positive=10)
        _, recall = curve.at_threshold(0.0)
        assert recall == pytest.approx(3 / 10)

    def test_unknowns_without_truth_count_as_wrong(self):
        matches = MATCHES + [_match("u6", "kZ", 0.95)]
        curve = matches_to_curve(matches, TRUTH)
        precision, _ = curve.at_threshold(0.9)
        assert precision == pytest.approx(1 / 2)


class TestCalibrator:
    def test_reaches_target_recall(self):
        calibration = ThresholdCalibrator(target_recall=0.4).calibrate(
            MATCHES, TRUTH)
        assert calibration.recall >= 0.4
        assert 0.0 <= calibration.threshold <= 1.0

    def test_unreachable_recall_falls_back(self):
        calibration = ThresholdCalibrator(
            target_recall=0.99).calibrate(MATCHES, TRUTH)
        # best possible recall is 3/5
        assert calibration.threshold == pytest.approx(0.3)

    def test_invalid_target(self):
        with pytest.raises(ConfigurationError):
            ThresholdCalibrator(target_recall=0.0)

    def test_empty_matches_rejected(self):
        with pytest.raises(ConfigurationError):
            ThresholdCalibrator().calibrate([], {})

    def test_validate_on_held_out(self):
        calibrator = ThresholdCalibrator(target_recall=0.4)
        calibration = calibrator.calibrate(MATCHES, TRUTH)
        held_out = [
            _match("v1", "h1", 0.85),
            _match("v2", "hX", 0.2),
        ]
        held_truth = {"v1": "h1", "v2": "h2"}
        precision, recall, curve = calibrator.validate(
            calibration, held_out, held_truth)
        assert precision == pytest.approx(1.0)
        assert recall == pytest.approx(0.5)


class TestEndToEndCalibration:
    def test_calibrated_threshold_transfers(self, reddit_alter_egos):
        """The IV-E structure: calibrate on half, validate on half."""
        from repro.core.linker import AliasLinker
        from repro.eval.experiments import split_w1_w2

        w1, w2 = split_w1_w2(reddit_alter_egos, n_each=20, seed=5)
        linker = AliasLinker(threshold=0.0)
        linker.fit(reddit_alter_egos.originals)
        calibrator = ThresholdCalibrator(target_recall=0.6)
        calibration = calibrator.calibrate(
            linker.link(w1.alter_egos).matches, w1.truth)
        precision, recall, _ = calibrator.validate(
            calibration, linker.link(w2.alter_egos).matches, w2.truth)
        # transferred threshold keeps usable precision/recall
        assert precision > 0.5
        assert recall >= 0.3
