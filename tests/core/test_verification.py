"""Tests for authorship verification (repro.core.verification)."""

import pytest

from repro.core.verification import (
    Attribution,
    OpenSetAttributor,
    PairVerifier,
    Verdict,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def calibrated(reddit_alter_egos):
    """A threshold that separates pairs on the small fixture."""
    from repro.core.linker import AliasLinker
    from repro.core.threshold import ThresholdCalibrator

    linker = AliasLinker(threshold=0.0)
    linker.fit(reddit_alter_egos.originals)
    matches = linker.link(reddit_alter_egos.alter_egos).matches
    return ThresholdCalibrator(target_recall=0.7).calibrate(
        matches, reddit_alter_egos.truth).threshold


class TestPairVerifier:
    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            PairVerifier(threshold=2.0)

    def test_same_author_pair_accepted(self, reddit_alter_egos,
                                       calibrated):
        verifier = PairVerifier(threshold=calibrated)
        verifier.fit(reddit_alter_egos.originals)
        by_id = {d.doc_id: d for d in reddit_alter_egos.originals}
        hits = 0
        pairs = 0
        for alter in reddit_alter_egos.alter_egos[:8]:
            original = by_id[reddit_alter_egos.truth[alter.doc_id]]
            verdict = verifier.verify(alter, original)
            pairs += 1
            hits += verdict.same_author
        assert hits / pairs > 0.5

    def test_different_author_pair_scores_lower(self,
                                                reddit_alter_egos,
                                                calibrated):
        verifier = PairVerifier(threshold=calibrated)
        verifier.fit(reddit_alter_egos.originals)
        by_id = {d.doc_id: d for d in reddit_alter_egos.originals}
        alter = reddit_alter_egos.alter_egos[0]
        original = by_id[reddit_alter_egos.truth[alter.doc_id]]
        stranger = next(
            d for d in reddit_alter_egos.originals
            if d.doc_id != original.doc_id)
        same = verifier.verify(alter, original)
        different = verifier.verify(alter, stranger)
        assert same.score > different.score

    def test_margin_sign_matches_decision(self, reddit_alter_egos,
                                          calibrated):
        verifier = PairVerifier(threshold=calibrated)
        verifier.fit(reddit_alter_egos.originals)
        alter = reddit_alter_egos.alter_egos[0]
        by_id = {d.doc_id: d for d in reddit_alter_egos.originals}
        verdict = verifier.verify(
            alter, by_id[reddit_alter_egos.truth[alter.doc_id]])
        assert (verdict.margin >= 0) == verdict.same_author

    def test_works_without_fit(self, reddit_alter_egos):
        verifier = PairVerifier(threshold=0.0)
        alter = reddit_alter_egos.alter_egos[0]
        verdict = verifier.verify(alter,
                                  reddit_alter_egos.originals[0])
        assert isinstance(verdict, Verdict)
        assert 0.0 <= verdict.score <= 1.0 + 1e-9


class TestOpenSetAttributor:
    def test_attributes_known_author(self, reddit_alter_egos,
                                     calibrated):
        attributor = OpenSetAttributor(threshold=calibrated)
        attributor.fit(reddit_alter_egos.originals)
        hits = 0
        for alter in reddit_alter_egos.alter_egos[:10]:
            attribution = attributor.attribute(alter)
            if attribution.author_id == \
                    reddit_alter_egos.truth[alter.doc_id]:
                hits += 1
        assert hits >= 6

    def test_abstains_above_impossible_threshold(self,
                                                 reddit_alter_egos):
        attributor = OpenSetAttributor(threshold=0.999999)
        attributor.fit(reddit_alter_egos.originals)
        attribution = attributor.attribute(
            reddit_alter_egos.alter_egos[0])
        assert not attribution.attributed
        assert attribution.author_id is None
        assert attribution.score > 0  # score still reported

    def test_runner_up_reported(self, reddit_alter_egos, calibrated):
        attributor = OpenSetAttributor(threshold=calibrated)
        attributor.fit(reddit_alter_egos.originals)
        attribution = attributor.attribute(
            reddit_alter_egos.alter_egos[0])
        assert attribution.runner_up_id is not None
        assert attribution.runner_up_score <= attribution.score
        assert attribution.margin_over_runner_up >= 0

    def test_attribute_many(self, reddit_alter_egos, calibrated):
        attributor = OpenSetAttributor(threshold=calibrated)
        attributor.fit(reddit_alter_egos.originals)
        out = attributor.attribute_many(
            reddit_alter_egos.alter_egos[:3])
        assert len(out) == 3
        assert all(isinstance(a, Attribution) for a in out)
