"""Tests for adversarial stylometry (repro.defense.obfuscation)."""

import pytest

from repro.defense.obfuscation import (
    ObfuscationConfig,
    StyleObfuscator,
)
from repro.forums.models import Forum, Message, UserRecord


@pytest.fixture
def obfuscator():
    return StyleObfuscator()


class TestTextTransforms:
    def test_case_flattened(self, obfuscator):
        assert obfuscator.obfuscate_text("This Is LOUD") == \
            "this is loud"

    def test_punctuation_regularized(self, obfuscator):
        out = obfuscator.obfuscate_text("no way!!! really???")
        assert "!" not in out and "?" not in out
        assert out.count(".") == 2

    def test_ellipsis_collapsed(self, obfuscator):
        out = obfuscator.obfuscate_text("well... maybe")
        assert "..." not in out
        assert "." in out

    def test_emoticons_removed(self, obfuscator):
        out = obfuscator.obfuscate_text("nice work :) keep it up xD")
        assert ":)" not in out and "xD" not in out

    def test_typos_fixed(self, obfuscator):
        out = obfuscator.obfuscate_text("i definately recieved it")
        assert "definitely" in out
        assert "received" in out

    def test_slang_expanded(self, obfuscator):
        out = obfuscator.obfuscate_text("tbh idk if u want this")
        assert "to be honest" in out
        assert "i do not know" in out
        assert "you" in out.split()

    def test_filler_slang_dropped(self, obfuscator):
        out = obfuscator.obfuscate_text("lol that was funny lmao")
        assert "lol" not in out and "lmao" not in out

    def test_synonyms_canonicalized(self, obfuscator):
        out = obfuscator.obfuscate_text(
            "an awesome deal, truly incredible and huge")
        assert "good" in out
        assert "big" in out
        assert "really" in out
        assert "awesome" not in out

    def test_docstring_example(self, obfuscator):
        assert obfuscator.obfuscate_text(
            "Ngl this vendor is AWESOME!!! :)") == \
            "not going to lie this vendor is good."

    def test_transforms_toggleable(self):
        config = ObfuscationConfig(flatten_case=False,
                                   regularize_punctuation=False,
                                   fix_typos=False,
                                   expand_slang=False,
                                   canonicalize_synonyms=False)
        obf = StyleObfuscator(config)
        text = "This stays EXACTLY as it was!!!"
        assert obf.obfuscate_text(text) == text

    def test_idempotent(self, obfuscator):
        text = "Tbh this AWESOME vendor recieved my order!!!"
        once = obfuscator.obfuscate_text(text)
        assert obfuscator.obfuscate_text(once) == once


class TestRecordAndForum:
    def _forum(self):
        forum = Forum(name="f")
        forum.add_message(Message(
            message_id="m1", author="alice",
            text="Tbh this is AWESOME!!!", timestamp=100,
            forum="f", section="s"))
        return forum

    def test_record_rewritten(self, obfuscator):
        forum = self._forum()
        record = obfuscator.obfuscate_record(forum.users["alice"])
        assert record.messages[0].text == "to be honest this is good."
        assert record.messages[0].timestamp == 100  # time untouched

    def test_forum_rewritten_originals_kept(self, obfuscator):
        forum = self._forum()
        out = obfuscator.obfuscate_forum(forum)
        assert "AWESOME" in forum.users["alice"].messages[0].text
        assert "good" in out.users["alice"].messages[0].text


class TestDefenseEffect:
    def test_obfuscation_reduces_attribution(self, polished_reddit):
        """§VI's claim, measured: obfuscating the alter-ego half
        lowers k-attribution accuracy."""
        from repro.core.kattribution import KAttributor
        from repro.eval.alterego import build_alter_ego_dataset

        clean = build_alter_ego_dataset(polished_reddit, seed=3,
                                        words_per_alias=600)
        obf = StyleObfuscator().obfuscate_forum(polished_reddit)
        fuzzy = build_alter_ego_dataset(obf, seed=3,
                                        words_per_alias=600)
        if not clean.alter_egos or not fuzzy.alter_egos:
            pytest.skip("fixture too small")
        attacker = KAttributor(k=1, use_activity=False)
        attacker.fit(clean.originals)
        acc_clean = attacker.accuracy_at_k(
            clean.alter_egos, clean.truth, ks=(1,))[1]
        defender = KAttributor(k=1, use_activity=False)
        defender.fit(fuzzy.originals)
        acc_fuzzy = defender.accuracy_at_k(
            fuzzy.alter_egos, fuzzy.truth, ks=(1,))[1]
        assert acc_fuzzy <= acc_clean + 0.05
