"""Tests for posting-schedule countermeasures (repro.defense.scheduling)."""

import numpy as np
import pytest

from repro.defense.scheduling import ScheduleJitterer, ScheduleShifter
from repro.errors import ConfigurationError
from repro.forums.models import DAY, HOUR, Forum, Message, UserRecord


def _record(n=60, hour=20):
    record = UserRecord(alias="alice", forum="f")
    for i in range(n):
        record.add(Message(
            message_id=f"m{i}", author="alice",
            text=f"message {i} with some ordinary words here",
            timestamp=i * DAY + hour * HOUR + 120,
            forum="f", section="s"))
    return record


class TestScheduleShifter:
    def test_invalid_hour(self):
        with pytest.raises(ConfigurationError):
            ScheduleShifter(target_hour=24)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            ScheduleShifter(window_hours=0)

    def test_all_posts_in_window(self):
        shifter = ScheduleShifter(target_hour=8, window_hours=3,
                                  seed=1)
        out = shifter.apply_record(_record())
        hours = {(m.timestamp % DAY) // HOUR for m in out.messages}
        assert hours <= {8, 9, 10}

    def test_days_preserved(self):
        shifter = ScheduleShifter(target_hour=8, seed=1)
        record = _record()
        out = shifter.apply_record(record)
        for before, after in zip(record.messages, out.messages):
            assert before.timestamp // DAY == after.timestamp // DAY

    def test_text_untouched(self):
        shifter = ScheduleShifter(seed=1)
        record = _record()
        out = shifter.apply_record(record)
        assert [m.text for m in out.messages] == \
            [m.text for m in record.messages]

    def test_window_wraps_midnight(self):
        shifter = ScheduleShifter(target_hour=23, window_hours=3,
                                  seed=1)
        out = shifter.apply_record(_record())
        hours = {(m.timestamp % DAY) // HOUR for m in out.messages}
        assert hours <= {23, 0, 1}

    def test_forum_level(self):
        forum = Forum(name="f")
        for message in _record().messages:
            forum.add_message(message)
        out = ScheduleShifter(target_hour=6, seed=2).apply_forum(forum)
        hours = {(m.timestamp % DAY) // HOUR
                 for m in out.iter_messages()}
        assert max(hours) <= 9


class TestScheduleJitterer:
    def test_profile_flattened(self):
        jitterer = ScheduleJitterer(seed=3)
        out = jitterer.apply_record(_record(n=800))
        hours = np.array([(m.timestamp % DAY) // HOUR
                          for m in out.messages])
        counts = np.bincount(hours, minlength=24)
        # uniform-ish: no hour hoards more than 3x its fair share
        assert counts.max() < 3 * 800 / 24

    def test_defeats_profile_similarity(self):
        """Jittering one alias kills the activity correlation that the
        attack exploits."""
        from repro.core.activity import (
            activity_profile,
            profile_similarity,
        )

        record = _record(n=200)
        jittered = ScheduleJitterer(seed=4).apply_record(record)
        original_profile = activity_profile(record.timestamps,
                                            min_timestamps=10)
        jittered_profile = activity_profile(jittered.timestamps,
                                            min_timestamps=10)
        same = profile_similarity(original_profile, original_profile)
        cross = profile_similarity(original_profile, jittered_profile)
        assert cross < same - 0.3
