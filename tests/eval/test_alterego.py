"""Tests for alter-ego generation (repro.eval.alterego)."""

import numpy as np
import pytest

from repro.eval.alterego import (
    AlterEgoDataset,
    build_alter_ego_dataset,
    prune_trivial_pairs,
    split_record,
)
from repro.forums.models import Forum, Message, UserRecord


class TestSplitRecord:
    def _record(self, n=20):
        record = UserRecord(alias="alice", forum="f")
        for i in range(n):
            record.add(Message(
                message_id=f"m{i}", author="alice",
                text=f"distinct message number {i} words",
                timestamp=1_490_000_000 + i * 86400, forum="f",
                section="s"))
        return record

    def test_messages_partitioned(self):
        record = self._record(20)
        original, alter = split_record(record,
                                       np.random.default_rng(1))
        texts_orig = {m.text for m in original.messages}
        texts_alter = {m.text for m in alter.messages}
        assert not texts_orig & texts_alter
        assert len(original.messages) + len(alter.messages) == 20

    def test_alias_suffix(self):
        record = self._record(4)
        original, alter = split_record(record,
                                       np.random.default_rng(1))
        assert original.alias == "alice"
        assert alter.alias == "alice#ae"
        assert alter.metadata["alter_ego_of"] == "alice"

    def test_timestamps_divided_evenly(self):
        record = self._record(21)
        original, alter = split_record(record,
                                       np.random.default_rng(1))
        all_stamps = sorted(record.timestamps)
        merged = sorted(set(original.timestamps)
                        | set(alter.timestamps))
        assert set(merged) <= set(all_stamps)

    def test_deterministic_given_rng(self):
        record = self._record(10)
        a_orig, _ = split_record(record, np.random.default_rng(7))
        b_orig, _ = split_record(record, np.random.default_rng(7))
        assert [m.message_id for m in a_orig.messages] == \
            [m.message_id for m in b_orig.messages]


class TestBuildDataset:
    def test_truth_maps_alter_to_original(self, reddit_alter_egos):
        original_ids = {d.doc_id for d in reddit_alter_egos.originals}
        for alter in reddit_alter_egos.alter_egos:
            assert reddit_alter_egos.truth[alter.doc_id] in original_ids

    def test_alter_ego_ids_distinct(self, reddit_alter_egos):
        alter_ids = {d.doc_id for d in reddit_alter_egos.alter_egos}
        original_ids = {d.doc_id for d in reddit_alter_egos.originals}
        assert not alter_ids & original_ids

    def test_fewer_alter_egos_than_originals(self, reddit_alter_egos):
        # Table IV: the AE_ dataset is always smaller
        assert reddit_alter_egos.n_alter_egos <= \
            reddit_alter_egos.n_originals

    def test_word_budget_met(self, reddit_alter_egos):
        for doc in reddit_alter_egos.alter_egos:
            assert doc.n_words >= 600

    def test_deterministic(self, polished_reddit):
        a = build_alter_ego_dataset(polished_reddit, seed=9,
                                    words_per_alias=600)
        b = build_alter_ego_dataset(polished_reddit, seed=9,
                                    words_per_alias=600)
        assert [d.doc_id for d in a.alter_egos] == \
            [d.doc_id for d in b.alter_egos]

    def test_subset(self, reddit_alter_egos):
        wanted = [d.doc_id for d in reddit_alter_egos.alter_egos[:3]]
        sub = reddit_alter_egos.subset(wanted)
        assert sub.n_alter_egos == 3
        assert set(sub.truth) == set(wanted)
        assert sub.originals is reddit_alter_egos.originals


class TestPrune:
    def test_identical_halves_pruned(self, reddit_alter_egos):
        # fabricate a dataset whose alter ego is its own original text
        from dataclasses import replace

        original = reddit_alter_egos.originals[0]
        clone = replace(original, doc_id="clone#ae")
        dataset = AlterEgoDataset(
            originals=[original],
            alter_egos=[clone],
            truth={"clone#ae": original.doc_id},
        )
        removed = prune_trivial_pairs(dataset, threshold=0.99)
        assert removed == 1
        assert dataset.alter_egos == []
        assert dataset.truth == {}

    def test_normal_pairs_survive(self, reddit_alter_egos):
        dataset = AlterEgoDataset(
            originals=list(reddit_alter_egos.originals),
            alter_egos=list(reddit_alter_egos.alter_egos),
            truth=dict(reddit_alter_egos.truth),
        )
        removed = prune_trivial_pairs(dataset, threshold=0.9999)
        assert removed <= len(reddit_alter_egos.alter_egos) // 2
