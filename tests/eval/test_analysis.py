"""Tests for statistical analysis utilities (repro.eval.analysis)."""

import numpy as np
import pytest

from repro.eval.analysis import (
    ConfidenceInterval,
    ForumStatistics,
    bootstrap_ci,
    compare_accuracy,
    mcnemar,
)


class TestBootstrapCI:
    def test_interval_contains_estimate(self):
        ci = bootstrap_ci([0, 1, 1, 1, 0, 1, 1, 0, 1, 1], seed=1)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate == pytest.approx(0.7)

    def test_interval_narrows_with_n(self):
        rng = np.random.default_rng(0)
        small = bootstrap_ci(rng.random(20), seed=1)
        large = bootstrap_ci(rng.random(2000), seed=1)
        assert (large.high - large.low) < (small.high - small.low)

    def test_constant_sample_degenerate(self):
        ci = bootstrap_ci([1.0] * 30, seed=1)
        assert ci.low == ci.high == ci.estimate == 1.0

    def test_deterministic_given_seed(self):
        data = [0, 1, 0, 1, 1, 1, 0]
        a = bootstrap_ci(data, seed=9)
        b = bootstrap_ci(data, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], level=1.0)

    def test_custom_statistic(self):
        ci = bootstrap_ci([1, 2, 3, 4, 100], statistic=np.median,
                          seed=1)
        assert ci.estimate == 3.0

    def test_contains_helper(self):
        ci = ConfidenceInterval(estimate=0.5, low=0.4, high=0.6,
                                level=0.95)
        assert ci.contains(0.45)
        assert not ci.contains(0.7)


class TestMcNemar:
    def test_identical_vectors_p_one(self):
        result = mcnemar([True, False, True], [True, False, True])
        assert result.p_value == 1.0
        assert not result.significant

    def test_clear_winner_significant(self):
        a = [True] * 20
        b = [False] * 20
        result = mcnemar(a, b)
        assert result.b == 20 and result.c == 0
        assert result.p_value < 0.001
        assert result.significant

    def test_balanced_disagreement_not_significant(self):
        a = [True, False] * 5
        b = [False, True] * 5
        result = mcnemar(a, b)
        assert result.b == result.c == 5
        assert result.p_value > 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mcnemar([True], [True, False])

    def test_p_value_bounded(self):
        rng = np.random.default_rng(3)
        a = list(rng.random(50) > 0.5)
        b = list(rng.random(50) > 0.5)
        result = mcnemar(a, b)
        assert 0.0 <= result.p_value <= 1.0


class TestCompareAccuracy:
    def test_summary_renders(self):
        comparison = compare_accuracy([True] * 10 + [False] * 2,
                                      [True] * 6 + [False] * 6)
        text = comparison.summary("all", "text")
        assert "all:" in text and "McNemar" in text


class TestForumStatistics:
    def test_world_statistics(self, world):
        stats = ForumStatistics.of(world.forums["tmg"])
        assert stats.n_users == world.forums["tmg"].n_users
        assert stats.n_messages == world.forums["tmg"].n_messages
        assert stats.n_words > 0
        assert stats.vocabulary_size > 100
        assert 0.0 < stats.type_token_ratio < 1.0
        assert stats.hour_histogram.shape == (24,)
        assert stats.hour_histogram.sum() == pytest.approx(1.0)

    def test_percentiles_monotone(self, world):
        stats = ForumStatistics.of(world.forums["dm"])
        values = [stats.words_per_user[p]
                  for p in ForumStatistics.PERCENTILES]
        assert values == sorted(values)

    def test_summary_lines(self, world):
        stats = ForumStatistics.of(world.forums["dm"])
        lines = stats.summary_lines()
        assert any("vocabulary" in line for line in lines)
        assert any("busiest UTC hour" in line for line in lines)

    def test_empty_forum(self):
        from repro.forums.models import Forum

        stats = ForumStatistics.of(Forum(name="empty"))
        assert stats.n_users == 0
        assert stats.type_token_ratio == 0.0
