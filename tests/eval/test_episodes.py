"""Episode-style evaluation harness (repro.eval.episodes)."""

import json

import numpy as np
import pytest

from repro.config import FeatureConfig
from repro.core.documents import AliasDocument
from repro.errors import ConfigurationError
from repro.eval.episodes import (
    DRIFTS,
    Episode,
    EpisodeConfig,
    EpisodeOutcome,
    EpisodePool,
    cell_key,
    manifest_bytes,
    manifest_dict,
    manifest_digest,
    run_episodes,
    sample_from_pools,
    world_pools,
)


def _make_docs(n, seed, prefix):
    """Synthetic alias documents; ``u{i}`` shares ``k{i}``'s
    sub-vocabulary so closed episodes have a linkable ground truth."""
    rng = np.random.default_rng(seed)
    vocab = np.array([f"tok{i:04d}" for i in range(800)])
    docs = []
    for i in range(n):
        start = (i * 37) % 500
        words = tuple(rng.choice(vocab[start:start + 300], size=150))
        activity = rng.random(24)
        docs.append(AliasDocument(
            doc_id=f"{prefix}{i}", alias=f"{prefix}{i}", forum=prefix,
            text=" ".join(words), words=words, timestamps=(),
            activity=activity / activity.sum()))
    return docs


@pytest.fixture(scope="module")
def synth_pool():
    known = _make_docs(20, seed=11, prefix="k")
    unknown = _make_docs(10, seed=12, prefix="u")
    truth = {f"u{i}": f"k{i}" for i in range(10)}
    return EpisodePool(drift="dark-dark", bucket=200,
                       known=tuple(known), unknown=tuple(unknown),
                       truth=truth)


@pytest.fixture(scope="module")
def synth_config():
    return EpisodeConfig(seed=5, n_way=4, episodes_per_cell=6,
                         buckets=(200,))


@pytest.fixture(scope="module")
def synth_episodes(synth_pool, synth_config):
    return sample_from_pools([synth_pool], synth_config)


class TestEpisodeConfig:
    @pytest.mark.parametrize("kwargs", [
        {"n_way": 1},
        {"episodes_per_cell": 0},
        {"buckets": ()},
        {"buckets": (0,)},
        {"buckets": (300, 300)},
        {"drifts": ("sideways",)},
        {"drifts": ()},
        {"open_fraction": -0.1},
        {"open_fraction": 1.5},
    ])
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EpisodeConfig(**kwargs)

    def test_to_dict_is_json_scalars(self):
        data = EpisodeConfig().to_dict()
        assert data["drifts"] == list(DRIFTS)
        assert data["features"] == "stylometry,activity"
        json.dumps(data)  # must not raise

    def test_cell_key_format(self):
        assert cell_key("dark-dark", 300) == "dark-dark/w300"


class TestSampling:
    def test_panel_shape(self, synth_episodes, synth_config):
        assert len(synth_episodes) == synth_config.episodes_per_cell
        for episode in synth_episodes:
            assert len(episode.candidates) <= synth_config.n_way
            panel_ids = {d.doc_id for d in episode.candidates}
            assert len(panel_ids) == len(episode.candidates)
            assert episode.unknown.doc_id not in panel_ids

    def test_closed_episodes_plant_the_author(self, synth_episodes,
                                              synth_pool):
        closed = [e for e in synth_episodes if e.closed]
        assert closed
        for episode in closed:
            panel_ids = {d.doc_id for d in episode.candidates}
            assert episode.true_id in panel_ids
            assert synth_pool.truth[episode.unknown.doc_id] \
                == episode.true_id

    def test_open_episodes_hold_the_author_out(self, synth_episodes,
                                               synth_pool):
        for episode in synth_episodes:
            if episode.closed:
                continue
            held_out = synth_pool.truth.get(episode.unknown.doc_id)
            panel_ids = {d.doc_id for d in episode.candidates}
            assert held_out not in panel_ids

    def test_sampling_deterministic(self, synth_pool, synth_config,
                                    synth_episodes):
        again = sample_from_pools([synth_pool], synth_config)
        assert manifest_bytes(again, synth_config) \
            == manifest_bytes(synth_episodes, synth_config)

    def test_other_seed_samples_other_episodes(self, synth_pool,
                                               synth_config,
                                               synth_episodes):
        from dataclasses import replace

        other = replace(synth_config, seed=synth_config.seed + 1)
        sampled = sample_from_pools([synth_pool], other)
        assert manifest_dict(sampled, other)["episodes"] \
            != manifest_dict(synth_episodes, synth_config)["episodes"]

    def test_undersized_pool_rejected(self, synth_config):
        (doc,) = _make_docs(1, seed=1, prefix="k")
        pool = EpisodePool(drift="dark-dark", bucket=200,
                           known=(doc,), unknown=(doc,), truth={})
        with pytest.raises(ConfigurationError):
            sample_from_pools([pool], synth_config)

    def test_manifest_digest_is_sha256(self, synth_episodes,
                                       synth_config):
        digest = manifest_digest(synth_episodes, synth_config)
        assert len(digest) == 64
        assert digest == manifest_digest(synth_episodes, synth_config)


class TestWorldPools:
    def test_cells_cover_drifts_and_buckets(self, world):
        config = EpisodeConfig(seed=5, n_way=4, episodes_per_cell=2,
                               buckets=(300,))
        pools = world_pools(world, config)
        cells = {(p.drift, p.bucket) for p in pools}
        assert cells == {("dark-dark", 300), ("open-dark", 300)}
        for pool in pools:
            assert len(pool.known) >= 2
            assert pool.unknown
            # doc_ids are bucket-qualified so buckets never collide
            # in a shared profile cache.
            assert all(d.doc_id.endswith("@w300") for d in pool.known)
            for uid, kid in pool.truth.items():
                assert uid in {d.doc_id for d in pool.unknown}
                assert kid in {d.doc_id for d in pool.known}


class TestRunner:
    def test_unknown_variant_rejected(self, synth_episodes):
        with pytest.raises(ConfigurationError):
            run_episodes(synth_episodes, variant="stage3")

    def test_full_run_scores_every_episode(self, synth_episodes):
        report = run_episodes(synth_episodes)
        assert len(report.outcomes) == len(synth_episodes)
        assert report.n_degraded == 0 and report.n_skipped == 0
        cell = report.cells["dark-dark/w200"]
        assert cell["n_episodes"] == len(synth_episodes)
        assert cell["n_full"] == len(synth_episodes)
        for outcome in report.outcomes:
            assert outcome.best_id
            assert 0.0 <= outcome.best_score <= 1.0 + 1e-9
            if outcome.true_id is not None:
                assert outcome.rank >= 1

    def test_stage1_covers_the_same_episodes(self, synth_episodes):
        full = run_episodes(synth_episodes)
        stage1 = run_episodes(synth_episodes, variant="stage1")
        assert [o.episode_id for o in stage1.outcomes] \
            == [o.episode_id for o in full.outcomes]
        assert stage1.n_degraded == 0 and stage1.n_skipped == 0

    def test_outcome_serialization_is_conditional(self):
        clean = EpisodeOutcome(episode_id="e", drift="dark-dark",
                               bucket=200)
        assert "degraded" not in clean.to_dict()
        assert "skipped" not in clean.to_dict()
        hurt = EpisodeOutcome(episode_id="e", drift="dark-dark",
                              bucket=200, degraded=True,
                              degraded_reasons=("stage1_only",))
        assert hurt.to_dict()["degraded_reasons"] == ["stage1_only"]
        assert not hurt.full_fidelity

    def test_report_round_trips_through_json(self, synth_episodes):
        report = run_episodes(synth_episodes)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["variant"] == "full"
        assert len(data["outcomes"]) == len(synth_episodes)
