"""Tests for experiment orchestration (repro.eval.experiments)."""

import pytest

from repro.eval import experiments as ex
from repro.synth.world import DM, REDDIT, TMG, WorldConfig, ForumLoad


@pytest.fixture(scope="module")
def tiny_config():
    return WorldConfig(
        seed=901, reddit_users=24, tmg_users=10, dm_users=8,
        tmg_dm_overlap=3, reddit_dark_overlap=4,
        reddit_load=ForumLoad(heavy_fraction=0.9,
                              heavy_messages=(110, 150),
                              light_messages=(5, 20)),
        tmg_load=ForumLoad(heavy_fraction=0.9,
                           heavy_messages=(110, 150),
                           light_messages=(5, 20)),
        dm_load=ForumLoad(heavy_fraction=0.9,
                          heavy_messages=(110, 150),
                          light_messages=(5, 20)),
    )


class TestCaching:
    def test_world_cached(self, tiny_config):
        a = ex.get_world(tiny_config)
        b = ex.get_world(tiny_config)
        assert a is b

    def test_polished_cached(self, tiny_config):
        world = ex.get_world(tiny_config)
        a, _ = ex.get_polished(world, REDDIT)
        b, _ = ex.get_polished(world, REDDIT)
        assert a is b

    def test_refined_cached(self, tiny_config):
        world = ex.get_world(tiny_config)
        a = ex.get_refined(world, TMG, words_per_alias=400)
        b = ex.get_refined(world, TMG, words_per_alias=400)
        assert a is b

    def test_clear_caches(self, tiny_config):
        world = ex.get_world(tiny_config)
        ex.clear_caches()
        assert ex.get_world(tiny_config) is not world


class TestScaledConfig:
    def test_default_scale_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert ex.scaled_world_config() is ex.SMALL_WORLD

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert ex.scaled_world_config() is ex.PAPER_WORLD

    def test_invalid_scale_rejected(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ConfigurationError):
            ex.scaled_world_config()


class TestSplitW1W2:
    def test_disjoint_halves(self, tiny_config):
        world = ex.get_world(tiny_config)
        dataset = ex.get_alter_egos(world, REDDIT,
                                    words_per_alias=400)
        w1, w2 = ex.split_w1_w2(dataset, n_each=500, seed=1)
        ids1 = {d.doc_id for d in w1.alter_egos}
        ids2 = {d.doc_id for d in w2.alter_egos}
        assert not ids1 & ids2
        assert len(ids1) == len(ids2)

    def test_truth_restricted(self, tiny_config):
        world = ex.get_world(tiny_config)
        dataset = ex.get_alter_egos(world, REDDIT,
                                    words_per_alias=400)
        w1, _ = ex.split_w1_w2(dataset, n_each=3, seed=2)
        assert set(w1.truth) == {d.doc_id for d in w1.alter_egos}


class TestCrossForumHelpers:
    def test_cross_forum_truth_doc_ids(self, tiny_config):
        world = ex.get_world(tiny_config)
        truth = ex.cross_forum_truth(world, TMG, DM)
        assert len(truth) == tiny_config.tmg_dm_overlap
        for unknown_id, known_id in truth.items():
            assert unknown_id.startswith("tmg/")
            assert known_id.startswith("dm/")

    def test_reddit_darkweb_truth(self, tiny_config):
        world = ex.get_world(tiny_config)
        truth = ex.reddit_darkweb_truth(world)
        assert len(truth) == tiny_config.reddit_dark_overlap
        for unknown_id, known_id in truth.items():
            assert unknown_id.startswith("darkweb/")
            assert known_id.startswith("reddit/")

    def test_merged_darkweb_counts(self, tiny_config):
        world = ex.get_world(tiny_config)
        merged = ex.merged_darkweb(world)
        tmg, _ = ex.get_polished(world, TMG)
        dm, _ = ex.get_polished(world, DM)
        assert merged.n_users == tmg.n_users + dm.n_users

    def test_darkweb_refined_ids_qualified(self, tiny_config):
        world = ex.get_world(tiny_config)
        docs = ex.darkweb_refined(world, words_per_alias=400)
        assert docs
        assert all(d.doc_id.startswith("darkweb/") for d in docs)


class TestCalibratedThreshold:
    def test_threshold_in_unit_interval(self, tiny_config):
        world = ex.get_world(tiny_config)
        threshold = ex.calibrated_threshold(world,
                                            words_per_alias=400)
        assert 0.0 < threshold <= 1.0

    def test_threshold_cached(self, tiny_config):
        world = ex.get_world(tiny_config)
        a = ex.calibrated_threshold(world, words_per_alias=400)
        b = ex.calibrated_threshold(world, words_per_alias=400)
        assert a == b
