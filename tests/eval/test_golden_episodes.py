"""The golden-episode regression gate (committed seed-stable suite).

The committed file is the contract: a run of the full two-stage linker
over the golden suite must land inside the tolerance band, and a
deliberately degraded linker (stage-1 scores only) must breach it —
otherwise the gate could not catch a silent quality regression.
"""

import json
from pathlib import Path

import pytest

from repro.eval.episodes import (
    DEFAULT_TOLERANCE,
    GOLDEN_CONFIG,
    GOLDEN_METRICS,
    GOLDEN_PATH,
    check_golden,
    golden_payload,
    golden_suite,
    manifest_digest,
    run_episodes,
    write_golden,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_FILE = REPO_ROOT / GOLDEN_PATH


@pytest.fixture(scope="module")
def suite():
    """The canonical golden suite: ``(episodes, config)``."""
    return golden_suite()


@pytest.fixture(scope="module")
def full_report(suite):
    episodes, config = suite
    return run_episodes(episodes, features=config.features,
                        variant="full")


class TestGoldenFile:
    def test_committed_file_matches_config(self):
        golden = json.loads(GOLDEN_FILE.read_text(encoding="utf-8"))
        assert golden["config"] == GOLDEN_CONFIG.to_dict()
        assert golden["variant"] == "full"
        assert len(golden["manifest_sha256"]) == 64
        for cell, metrics in golden["cells"].items():
            for metric in GOLDEN_METRICS:
                assert metric in metrics, (cell, metric)

    def test_committed_manifest_is_reproducible(self, suite):
        """The suite samples to exactly the digest the file pins."""
        episodes, config = suite
        golden = json.loads(GOLDEN_FILE.read_text(encoding="utf-8"))
        assert golden["manifest_sha256"] \
            == manifest_digest(episodes, config)


class TestGate:
    def test_full_linker_passes(self, suite, full_report):
        episodes, config = suite
        assert check_golden(GOLDEN_FILE, full_report, episodes,
                            config) == []

    def test_full_linker_reproduces_scores_exactly(self, suite,
                                                   full_report):
        """Same code, same seed: zero tolerance still passes."""
        episodes, config = suite
        assert check_golden(GOLDEN_FILE, full_report, episodes,
                            config, tolerance=0.0) == []

    def test_stage1_variant_breaches(self, suite):
        """Stage 2 disabled must fail the tolerance check."""
        episodes, config = suite
        report = run_episodes(episodes, features=config.features,
                              variant="stage1")
        breaches = check_golden(GOLDEN_FILE, report, episodes, config,
                                tolerance=DEFAULT_TOLERANCE)
        assert breaches
        # The drop shows up in the ranking/calibration metrics, not
        # as a missing cell.
        assert all(":" in b and "missing" not in b for b in breaches)

    def test_manifest_drift_is_a_breach(self, suite, full_report,
                                        tmp_path):
        from dataclasses import replace

        episodes, config = suite
        payload = golden_payload(full_report, episodes, config)
        payload["manifest_sha256"] = "0" * 64
        tampered = tmp_path / "golden.json"
        tampered.write_text(json.dumps(payload), encoding="utf-8")
        breaches = check_golden(tampered, full_report, episodes,
                                config)
        assert any(b.startswith("manifest drift") for b in breaches)
        # A config change re-samples the suite, so it also drifts.
        other = replace(config, seed=config.seed + 1)
        assert manifest_digest(episodes, other) \
            != manifest_digest(episodes, config)

    def test_missing_cell_is_a_breach(self, suite, full_report,
                                      tmp_path):
        episodes, config = suite
        payload = golden_payload(full_report, episodes, config)
        payload["cells"] = dict(payload["cells"])
        payload["cells"]["open-dark/w9999"] = \
            dict(payload["cells"]["open-dark/w400"])
        tampered = tmp_path / "golden.json"
        tampered.write_text(json.dumps(payload), encoding="utf-8")
        breaches = check_golden(tampered, full_report, episodes,
                                config)
        assert "open-dark/w9999: cell missing from run" in breaches

    def test_negative_tolerance_rejected(self, suite, full_report):
        from repro.errors import ConfigurationError

        episodes, config = suite
        with pytest.raises(ConfigurationError):
            check_golden(GOLDEN_FILE, full_report, episodes, config,
                         tolerance=-0.1)

    def test_missing_golden_file_raises_typed_error(self, suite,
                                                    full_report,
                                                    tmp_path):
        from repro.errors import DatasetError

        episodes, config = suite
        with pytest.raises(DatasetError, match="not found"):
            check_golden(tmp_path / "absent.json", full_report,
                         episodes, config)

    def test_corrupt_golden_file_raises_typed_error(self, suite,
                                                    full_report,
                                                    tmp_path):
        from repro.errors import DatasetError

        episodes, config = suite
        junk = tmp_path / "junk.json"
        junk.write_text("{not json", encoding="utf-8")
        with pytest.raises(DatasetError, match="not valid JSON"):
            check_golden(junk, full_report, episodes, config)

    def test_write_golden_round_trips(self, suite, full_report,
                                      tmp_path):
        episodes, config = suite
        path = tmp_path / "golden.json"
        payload = write_golden(path, full_report, episodes, config)
        assert json.loads(path.read_text(encoding="utf-8")) == payload
        assert check_golden(path, full_report, episodes, config,
                            tolerance=0.0) == []
