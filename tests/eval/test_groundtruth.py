"""Tests for the simulated manual-evaluation protocol (repro.eval.groundtruth)."""

import pytest

from repro.core.documents import AliasDocument
from repro.core.linker import Match
from repro.eval import groundtruth as gt
from repro.synth import evidence as ev


def _doc(doc_id, forum, alias, disclosures=None):
    return AliasDocument(
        doc_id=doc_id, alias=alias, forum=forum, text="",
        words=(), timestamps=(), activity=None,
        metadata={"disclosures": disclosures or {}})


class TestClassifyPair:
    def test_alias_reference_is_true(self):
        a = _doc("reddit/open1", "reddit", "open1",
                 {ev.ALIAS_REF: ["tmg:dark1"]})
        b = _doc("tmg/dark1", "tmg", "dark1")
        result = gt.classify_pair(a, b)
        assert result.verdict == gt.TRUE
        assert ev.ALIAS_REF in result.unique_matches

    def test_alias_reference_other_direction(self):
        a = _doc("reddit/open1", "reddit", "open1")
        b = _doc("tmg/dark1", "tmg", "dark1",
                 {ev.ALIAS_REF: ["reddit:open1"]})
        assert gt.classify_pair(a, b).verdict == gt.TRUE

    def test_qualified_alias_reference_matches(self):
        # merged DarkWeb forum uses "tmg/dark1" qualified aliases
        a = _doc("reddit/open1", "reddit", "open1",
                 {ev.ALIAS_REF: ["tmg:dark1"]})
        b = _doc("darkweb/tmg/dark1", "darkweb", "tmg/dark1")
        assert gt.classify_pair(a, b).verdict == gt.TRUE

    def test_same_alias_is_true(self):
        # vendors use their name as a brand on every forum (§V-C)
        a = _doc("tmg/AcidQueen", "tmg", "AcidQueen")
        b = _doc("reddit/AcidQueen", "reddit", "AcidQueen")
        result = gt.classify_pair(a, b)
        assert result.verdict == gt.TRUE
        assert "same_alias" in result.unique_matches

    def test_same_alias_qualified_form_matches(self):
        a = _doc("darkweb/tmg/AcidQueen", "darkweb", "tmg/AcidQueen")
        b = _doc("reddit/AcidQueen", "reddit", "AcidQueen")
        assert gt.classify_pair(a, b).verdict == gt.TRUE

    def test_shared_referral_link_is_true(self):
        link = "https://dealwatcher.io/ref/fox7"
        a = _doc("a", "reddit", "a", {ev.REFERRAL_LINK: [link]})
        b = _doc("b", "tmg", "b", {ev.REFERRAL_LINK: [link]})
        assert gt.classify_pair(a, b).verdict == gt.TRUE

    def test_shared_email_is_true(self):
        a = _doc("a", "reddit", "a", {ev.EMAIL: ["x@pm.com"]})
        b = _doc("b", "tmg", "b", {ev.EMAIL: ["x@pm.com"]})
        assert gt.classify_pair(a, b).verdict == gt.TRUE

    def test_contradictory_age_is_false(self):
        # the paper: "one match declares to be 20 years old on the
        # Dark Web and to be 34 on Reddit"
        a = _doc("a", "reddit", "a", {ev.AGE: ["34"]})
        b = _doc("b", "tmg", "b", {ev.AGE: ["20"]})
        result = gt.classify_pair(a, b)
        assert result.verdict == gt.FALSE
        assert ev.AGE in result.contradictions

    def test_contradictory_religion_is_false(self):
        a = _doc("a", "reddit", "a", {ev.RELIGION: ["Christian"]})
        b = _doc("b", "tmg", "b", {ev.RELIGION: ["Atheist"]})
        assert gt.classify_pair(a, b).verdict == gt.FALSE

    def test_two_soft_agreements_probably_true(self):
        a = _doc("a", "reddit", "a",
                 {ev.CITY: ["Miami"], ev.DRUG: ["white molly"]})
        b = _doc("b", "tmg", "b",
                 {ev.CITY: ["Miami"], ev.DRUG: ["white molly"]})
        result = gt.classify_pair(a, b)
        assert result.verdict == gt.PROBABLY_TRUE
        assert set(result.agreements) == {ev.CITY, ev.DRUG}

    def test_one_agreement_is_unclear(self):
        # the paper: sharing only the kind of drug "is not
        # discriminative information"
        a = _doc("a", "reddit", "a", {ev.DRUG: ["lsd tabs"]})
        b = _doc("b", "tmg", "b", {ev.DRUG: ["lsd tabs"]})
        assert gt.classify_pair(a, b).verdict == gt.UNCLEAR

    def test_no_disclosures_is_unclear(self):
        a = _doc("a", "reddit", "a")
        b = _doc("b", "tmg", "b")
        assert gt.classify_pair(a, b).verdict == gt.UNCLEAR

    def test_unique_leak_beats_contradiction(self):
        a = _doc("a", "reddit", "a",
                 {ev.ALIAS_REF: ["tmg:b"], ev.AGE: ["20"]})
        b = _doc("tmg/b", "tmg", "b", {ev.AGE: ["40"]})
        assert gt.classify_pair(a, b).verdict == gt.TRUE

    def test_contradiction_beats_agreements(self):
        a = _doc("a", "reddit", "a",
                 {ev.CITY: ["Miami"], ev.DRUG: ["dmt"],
                  ev.AGE: ["20"]})
        b = _doc("b", "tmg", "b",
                 {ev.CITY: ["Miami"], ev.DRUG: ["dmt"],
                  ev.AGE: ["44"]})
        assert gt.classify_pair(a, b).verdict == gt.FALSE


class TestEvaluateMatches:
    def _match(self, uid, cid, accepted=True):
        return Match(unknown_id=uid, candidate_id=cid, score=0.9,
                     accepted=accepted, first_stage_score=0.9)

    def test_counts_tally(self):
        docs = {
            "u1": _doc("u1", "reddit", "u1",
                       {ev.ALIAS_REF: ["tmg:k1"]}),
            "k1": _doc("tmg/k1", "tmg", "k1"),
            "u2": _doc("u2", "reddit", "u2", {ev.AGE: ["20"]}),
            "k2": _doc("k2", "tmg", "k2", {ev.AGE: ["50"]}),
        }
        matches = [self._match("u1", "k1"), self._match("u2", "k2")]
        report = gt.evaluate_matches(matches, docs)
        assert report.counts[gt.TRUE] == 1
        assert report.counts[gt.FALSE] == 1
        assert report.n_pairs == 2

    def test_rejected_matches_skipped(self):
        docs = {"u": _doc("u", "r", "u"), "k": _doc("k", "t", "k")}
        matches = [self._match("u", "k", accepted=False)]
        report = gt.evaluate_matches(matches, docs)
        assert report.n_pairs == 0

    def test_summary_rows_cover_all_verdicts(self):
        report = gt.EvaluationReport()
        rows = report.summary_rows()
        assert [v for v, _ in rows] == list(gt.VERDICTS)


class TestGroundTruthVerdicts:
    def test_confusion_counts(self):
        matches = [
            Match("u1", "k1", 0.9, True, 0.9),
            Match("u2", "kX", 0.9, True, 0.9),
            Match("u3", "k3", 0.9, False, 0.9),
            Match("u4", "k4", 0.9, True, 0.9),
        ]
        truth = {"u1": "k1", "u2": "k2", "u3": "k3"}
        counts = gt.ground_truth_verdicts(matches, truth)
        assert counts == {"correct": 1, "wrong": 1, "no_truth": 1}


class TestWorldIntegration:
    def test_linked_pairs_classified_true_sometimes(self, world):
        """End-to-end: some ground-truth linked pairs must carry
        True-grade synthetic evidence."""
        from repro.core.documents import build_document

        verdicts = []
        for link in world.links:
            rec_a = world.forums[link.forum_a].users[link.alias_a]
            rec_b = world.forums[link.forum_b].users[link.alias_b]
            doc_a = build_document(rec_a, words_per_alias=50,
                                   require_activity=False,
                                   min_timestamps=0)
            doc_b = build_document(rec_b, words_per_alias=50,
                                   require_activity=False,
                                   min_timestamps=0)
            if doc_a and doc_b:
                verdicts.append(gt.classify_pair(doc_a, doc_b).verdict)
        assert verdicts
        assert gt.TRUE in verdicts
