"""Unit tests for evaluation metrics (repro.eval.metrics)."""

import numpy as np
import pytest

from repro.eval.metrics import (
    PRCurve,
    accuracy_at_k,
    curve_table,
    pr_curve,
    precision_recall_f1,
)


class TestPRCurve:
    def test_perfect_ranking(self):
        curve = pr_curve([0.9, 0.8, 0.2, 0.1],
                         [True, True, False, False], n_positive=2)
        precision, recall = curve.at_threshold(0.8)
        assert precision == 1.0
        assert recall == 1.0

    def test_worst_ranking(self):
        curve = pr_curve([0.9, 0.1], [False, True], n_positive=1)
        precision, recall = curve.at_threshold(0.9)
        assert precision == 0.0
        assert recall == 0.0

    def test_recall_denominator_explicit(self):
        curve = pr_curve([0.9], [True], n_positive=4)
        _, recall = curve.at_threshold(0.5)
        assert recall == pytest.approx(0.25)

    def test_default_denominator_is_label_sum(self):
        curve = pr_curve([0.9, 0.5], [True, True])
        assert curve.n_positive == 2

    def test_empty_inputs(self):
        curve = pr_curve([], [])
        assert curve.auc() == 0.0
        assert curve.at_threshold(0.5) == (1.0, 0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pr_curve([0.5], [True, False])

    def test_ties_collapsed(self):
        curve = pr_curve([0.5, 0.5, 0.5], [True, False, True],
                         n_positive=2)
        assert len(curve.thresholds) == 1
        precision, recall = curve.at_threshold(0.5)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(1.0)

    def test_threshold_above_all_scores(self):
        curve = pr_curve([0.5], [True])
        assert curve.at_threshold(0.9) == (1.0, 0.0)


class TestAUC:
    def test_perfect_auc_is_one(self):
        curve = pr_curve([0.9, 0.8, 0.2], [True, True, False],
                         n_positive=2)
        assert curve.auc() == pytest.approx(1.0)

    def test_auc_in_unit_interval(self):
        rng = np.random.default_rng(1)
        scores = rng.random(50)
        labels = rng.random(50) > 0.5
        curve = pr_curve(scores, labels)
        assert 0.0 <= curve.auc() <= 1.0

    def test_better_ranking_higher_auc(self):
        good = pr_curve([0.9, 0.8, 0.3, 0.2],
                        [True, True, False, False], n_positive=2)
        bad = pr_curve([0.9, 0.8, 0.3, 0.2],
                       [False, True, False, True], n_positive=2)
        assert good.auc() > bad.auc()


class TestThresholdForRecall:
    def test_finds_smallest_sufficient(self):
        curve = pr_curve([0.9, 0.7, 0.5, 0.3],
                         [True, True, True, True], n_positive=4)
        assert curve.threshold_for_recall(0.5) == pytest.approx(0.7)

    def test_unreachable_falls_back_to_min(self):
        curve = pr_curve([0.9, 0.7], [False, False], n_positive=2)
        assert curve.threshold_for_recall(0.5) == pytest.approx(0.7)


class TestPointMetrics:
    def test_precision_recall_f1(self):
        precision, recall, f1 = precision_recall_f1(8, 10, 16)
        assert precision == pytest.approx(0.8)
        assert recall == pytest.approx(0.5)
        assert f1 == pytest.approx(2 * 0.8 * 0.5 / 1.3)

    def test_zero_denominators(self):
        assert precision_recall_f1(0, 0, 0) == (0.0, 0.0, 0.0)


class TestAccuracyAtK:
    def test_basic(self):
        assert accuracy_at_k([1, 2, 11, 3], 10) == pytest.approx(0.75)

    def test_empty(self):
        assert accuracy_at_k([], 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            accuracy_at_k([1], 0)


class TestCurveTable:
    def test_rows_downsampled(self):
        scores = np.linspace(0, 1, 100)
        labels = scores > 0.5
        curve = pr_curve(scores, labels)
        rows = curve_table(curve, points=10)
        assert len(rows) == 10
        assert all({"threshold", "precision", "recall"} ==
                   set(r) for r in rows)

    def test_empty_curve(self):
        assert curve_table(pr_curve([], [])) == []
