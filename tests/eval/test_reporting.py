"""Tests for benchmark result aggregation (repro.eval.reporting)."""

import pytest

from repro.eval import reporting


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "table4_dataset_sizes.txt").write_text("table four\n")
    (tmp_path / "fig1_word_cdf.txt").write_text("figure one\n")
    (tmp_path / "zz_custom.txt").write_text("custom section\n")
    return tmp_path


class TestLoadSections:
    def test_paper_order_respected(self, results_dir):
        sections = reporting.load_sections(results_dir)
        names = [s.name for s in sections]
        assert names.index("fig1_word_cdf") < \
            names.index("table4_dataset_sizes")

    def test_unknown_sections_appended(self, results_dir):
        sections = reporting.load_sections(results_dir)
        assert sections[-1].name == "zz_custom"

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            reporting.load_sections(tmp_path / "nope")


class TestRenderMarkdown:
    def test_contains_bodies_and_titles(self, results_dir):
        text = reporting.render_markdown(
            reporting.load_sections(results_dir))
        assert "## fig1 word cdf" in text
        assert "figure one" in text
        assert text.startswith("# Measured benchmark results")

    def test_code_fences_balanced(self, results_dir):
        text = reporting.render_markdown(
            reporting.load_sections(results_dir))
        assert text.count("```") % 2 == 0


class TestMain:
    def test_main_happy_path(self, results_dir, capsys):
        assert reporting.main([str(results_dir)]) == 0
        assert "figure one" in capsys.readouterr().out

    def test_main_usage_error(self, capsys):
        assert reporting.main([]) == 2

    def test_main_missing_dir(self, tmp_path, capsys):
        assert reporting.main([str(tmp_path / "nope")]) == 1

    def test_main_empty_dir(self, tmp_path, capsys):
        assert reporting.main([str(tmp_path)]) == 1
