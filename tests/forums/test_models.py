"""Unit tests for the forum data model (repro.forums.models)."""

import pytest

from repro.errors import DatasetError
from repro.forums.models import (
    DAY,
    HOUR,
    Forum,
    Message,
    Thread,
    UserRecord,
    merge_forums,
)


def _msg(i=1, author="alice", forum="f", ts=1_500_000_000, **kw):
    return Message(message_id=f"m{i}", author=author,
                   text=f"message number {i} with some words",
                   timestamp=ts, forum=forum, section="s", **kw)


class TestMessage:
    def test_hour_utc(self):
        # 1_500_000_000 = 2017-07-14 02:40:00 UTC
        assert _msg(ts=1_500_000_000).hour_utc == 2

    def test_day_index(self):
        assert _msg(ts=0).day_index == 0
        assert _msg(ts=DAY + 5).day_index == 1

    def test_with_text_replaces_only_text(self):
        msg = _msg()
        out = msg.with_text("new text")
        assert out.text == "new text"
        assert out.message_id == msg.message_id
        assert msg.text != "new text"  # original untouched

    def test_roundtrip_dict(self):
        msg = _msg(parent_id="m0", metadata={"k": "v"})
        again = Message.from_dict(msg.to_dict())
        assert again == msg

    def test_roundtrip_without_optionals(self):
        msg = _msg()
        data = msg.to_dict()
        assert "parent_id" not in data
        assert "metadata" not in data
        assert Message.from_dict(data) == msg

    def test_malformed_dict_raises(self):
        with pytest.raises(DatasetError):
            Message.from_dict({"message_id": "x"})


class TestThread:
    def test_roundtrip(self):
        thread = Thread(thread_id="t1", forum="f", section="s",
                        title="hello", author="alice",
                        message_ids=("m1", "m2"), upvotes=10)
        assert Thread.from_dict(thread.to_dict()) == thread

    def test_malformed_raises(self):
        with pytest.raises(DatasetError):
            Thread.from_dict({})


class TestUserRecord:
    def test_add_checks_author(self):
        record = UserRecord(alias="alice", forum="f")
        with pytest.raises(DatasetError):
            record.add(_msg(author="bob"))

    def test_timestamps(self):
        record = UserRecord(alias="alice", forum="f")
        record.add(_msg(1, ts=100))
        record.add(_msg(2, ts=50))
        assert record.timestamps == [100, 50]

    def test_total_words(self):
        record = UserRecord(alias="alice", forum="f")
        record.add(_msg(1))
        # "message number 1 with some words": 5 words, "1" is a number
        assert record.total_words() == 5

    def test_sections_counts(self):
        record = UserRecord(alias="alice", forum="f")
        record.add(_msg(1))
        record.add(_msg(2))
        assert record.sections() == {"s": 2}

    def test_roundtrip(self):
        record = UserRecord(alias="alice", forum="f",
                            metadata={"persona_id": 3})
        record.add(_msg(1))
        again = UserRecord.from_dict(record.to_dict())
        assert again.alias == "alice"
        assert again.metadata["persona_id"] == 3
        assert len(again.messages) == 1


class TestForum:
    def test_add_message_creates_user(self):
        forum = Forum(name="f")
        forum.add_message(_msg())
        assert "alice" in forum.users
        assert forum.n_users == 1
        assert forum.n_messages == 1

    def test_add_message_checks_forum(self):
        forum = Forum(name="f")
        with pytest.raises(DatasetError):
            forum.add_message(_msg(forum="other"))

    def test_sections_registered(self):
        forum = Forum(name="f")
        forum.add_message(_msg())
        assert "s" in forum.sections

    def test_iter_messages(self):
        forum = Forum(name="f")
        forum.add_message(_msg(1))
        forum.add_message(_msg(2, author="bob"))
        assert len(list(forum.iter_messages())) == 2

    def test_add_thread_checks_forum(self):
        forum = Forum(name="f")
        thread = Thread(thread_id="t", forum="other", section="s",
                        title="", author="a")
        with pytest.raises(DatasetError):
            forum.add_thread(thread)

    def test_roundtrip(self):
        forum = Forum(name="f", utc_offset_hours=2)
        forum.add_message(_msg())
        again = Forum.from_dict(forum.to_dict())
        assert again.name == "f"
        assert again.utc_offset_hours == 2
        assert again.n_messages == 1


class TestMergeForums:
    def _two_forums(self):
        a = Forum(name="tmg")
        a.add_message(_msg(1, author="alice", forum="tmg"))
        b = Forum(name="dm")
        b.add_message(_msg(2, author="alice", forum="dm"))
        return a, b

    def test_aliases_namespaced(self):
        a, b = self._two_forums()
        merged = merge_forums("darkweb", [a, b])
        assert set(merged.users) == {"tmg/alice", "dm/alice"}

    def test_message_authors_rewritten(self):
        a, b = self._two_forums()
        merged = merge_forums("darkweb", [a, b])
        for record in merged.users.values():
            for message in record.messages:
                assert message.author == record.alias
                assert message.forum == "darkweb"

    def test_source_metadata_kept(self):
        a, b = self._two_forums()
        merged = merge_forums("darkweb", [a, b])
        assert merged.users["tmg/alice"].metadata["source_forum"] == "tmg"
        assert merged.users["tmg/alice"].metadata["source_alias"] == \
            "alice"

    def test_counts_add_up(self):
        a, b = self._two_forums()
        merged = merge_forums("darkweb", [a, b])
        assert merged.n_messages == a.n_messages + b.n_messages
