"""Unit tests for the simulated scrapers (repro.forums.scraper/.reddit/.darkweb)."""

import pytest

from repro.errors import ScrapeError
from repro.forums.darkweb import DarkWebScraper, tor_session
from repro.forums.models import Forum, Message, Thread
from repro.forums.reddit import RedditScraper
from repro.forums.scraper import PAGE_SIZE, ForumScraper, ScrapeSession


def _source(name="f", offset=2, n_msgs=30):
    forum = Forum(name=name, utc_offset_hours=offset)
    ids = []
    for i in range(n_msgs):
        msg = Message(message_id=f"m{i}", author=f"user{i % 3}",
                      text=f"source message {i} content here",
                      timestamp=1_500_000_000 + i * 3600,
                      forum=name, section="board")
        forum.add_message(msg)
        ids.append(msg.message_id)
    forum.add_thread(Thread(thread_id="t1", forum=name, section="board",
                            title="big", author="user0",
                            message_ids=tuple(ids), upvotes=50))
    return forum


class TestScrapeSession:
    def test_requests_counted(self):
        session = ScrapeSession(seed=1, failure_rate=0.0)
        session.request("x")
        session.request("y")
        assert session.stats.requests == 2
        assert session.stats.virtual_seconds > 0

    def test_transient_failures_retried(self):
        session = ScrapeSession(seed=1, failure_rate=0.5, max_retries=50)
        session.request("flaky")  # should eventually succeed
        assert session.stats.retries >= 0

    def test_gives_up_after_max_retries(self):
        session = ScrapeSession(seed=1, failure_rate=0.999,
                                max_retries=2)
        with pytest.raises(ScrapeError):
            for _ in range(200):
                session.request("dead")

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            ScrapeSession(failure_rate=1.5)

    def test_deterministic(self):
        a = ScrapeSession(seed=9, failure_rate=0.1)
        b = ScrapeSession(seed=9, failure_rate=0.1)
        for _ in range(20):
            a.request("r")
            b.request("r")
        assert a.stats.virtual_seconds == b.stats.virtual_seconds
        assert a.stats.retries == b.stats.retries


class TestForumScraper:
    def test_collect_roundtrips_timestamps_to_utc(self):
        source = _source(offset=5)
        scraper = ForumScraper(source,
                               ScrapeSession(seed=1, failure_rate=0.0))
        collected = scraper.collect()
        original = {m.message_id: m.timestamp
                    for m in source.iter_messages()}
        for message in collected.iter_messages():
            assert message.timestamp == original[message.message_id]

    def test_collect_preserves_message_count(self):
        source = _source(n_msgs=60)
        scraper = ForumScraper(source,
                               ScrapeSession(seed=1, failure_rate=0.0))
        collected = scraper.collect()
        assert collected.n_messages == source.n_messages

    def test_pagination_requests(self):
        source = _source(n_msgs=PAGE_SIZE * 2 + 1)
        session = ScrapeSession(seed=1, failure_rate=0.0)
        scraper = ForumScraper(source, session)
        thread = source.threads["t1"]
        messages = scraper.fetch_thread(thread)
        assert len(messages) == PAGE_SIZE * 2 + 1

    def test_fetch_page_returns_local_time(self):
        source = _source(offset=3)
        scraper = ForumScraper(source,
                               ScrapeSession(seed=1, failure_rate=0.0))
        page = scraper._fetch_page(source.threads["t1"], 0)
        original = {m.message_id: m.timestamp
                    for m in source.iter_messages()}
        assert all(m.timestamp == original[m.message_id] + 3 * 3600
                   for m in page)


class TestRedditScraper:
    def _reddit(self, world):
        return world.forums["reddit"]

    def test_seed_commenters_found(self, world):
        scraper = RedditScraper(self._reddit(world),
                                ScrapeSession(seed=1, failure_rate=0.0),
                                seed_subreddit="r/DarkNetMarkets")
        commenters = scraper.seed_commenters(n_topics=50)
        assert len(commenters) > 0

    def test_missing_seed_subreddit_raises(self):
        source = _source()
        scraper = RedditScraper(source,
                                ScrapeSession(seed=1, failure_rate=0.0),
                                seed_subreddit="r/missing")
        with pytest.raises(ScrapeError):
            scraper.seed_commenters()

    def test_user_history_limit(self, world):
        reddit = self._reddit(world)
        alias = max(reddit.users,
                    key=lambda a: len(reddit.users[a].messages))
        scraper = RedditScraper(reddit,
                                ScrapeSession(seed=1, failure_rate=0.0))
        history = scraper.user_history(alias, limit=5)
        assert len(history) == 5
        stamps = [m.timestamp for m in history]
        assert stamps == sorted(stamps, reverse=True)

    def test_unknown_user_history_empty(self, world):
        scraper = RedditScraper(self._reddit(world),
                                ScrapeSession(seed=1, failure_rate=0.0))
        assert scraper.user_history("nobody-here") == []

    def test_collect_study_dataset_subset_of_world(self, world):
        reddit = self._reddit(world)
        scraper = RedditScraper(reddit,
                                ScrapeSession(seed=1, failure_rate=0.0))
        collected = scraper.collect_study_dataset(n_topics=20,
                                                  history_limit=50)
        assert 0 < collected.n_users <= reddit.n_users
        original = {m.message_id: m.timestamp
                    for m in reddit.iter_messages()}
        for message in collected.iter_messages():
            assert message.timestamp == original[message.message_id]


class TestDarkWebScraper:
    def test_tor_session_parameters(self):
        session = tor_session(seed=1)
        assert session.mean_latency > 1.0
        assert session.failure_rate > 0.0

    def test_vendor_threads_detected(self, world):
        tmg = world.forums["tmg"]
        scraper = DarkWebScraper(
            tmg, ScrapeSession(seed=1, failure_rate=0.0))
        vendors = scraper.vendor_threads()
        index = {m.message_id: m for m in tmg.iter_messages()}
        for thread in vendors:
            first = index[thread.message_ids[0]]
            assert "official" in first.text.lower()

    def test_collect_tmg(self, world):
        tmg = world.forums["tmg"]
        scraper = DarkWebScraper(
            tmg, ScrapeSession(seed=1, failure_rate=0.0))
        collected = scraper.collect()
        assert collected.n_messages == tmg.n_messages
