"""Unit tests for JSONL persistence (repro.forums.storage)."""

import json

import pytest

from repro.errors import DatasetError
from repro.forums.models import Forum, Message, Thread
from repro.forums.storage import (
    iter_user_records,
    load_forum,
    load_world,
    save_forum,
    save_world,
)


def _forum(name="f", n_users=3):
    forum = Forum(name=name, utc_offset_hours=1)
    for u in range(n_users):
        for i in range(2):
            forum.add_message(Message(
                message_id=f"{name}-{u}-{i}",
                author=f"user{u}",
                text=f"hello from user {u} message {i}",
                timestamp=1_500_000_000 + u * 100 + i,
                forum=name, section="general"))
    forum.add_thread(Thread(thread_id=f"{name}-t1", forum=name,
                            section="general", title="t",
                            author="user0",
                            message_ids=(f"{name}-0-0",)))
    return forum


class TestRoundtrip:
    def test_forum_roundtrip(self, tmp_path):
        forum = _forum()
        path = tmp_path / "f.jsonl"
        save_forum(forum, path)
        loaded = load_forum(path)
        assert loaded.name == forum.name
        assert loaded.utc_offset_hours == 1
        assert loaded.n_users == forum.n_users
        assert loaded.n_messages == forum.n_messages
        assert set(loaded.threads) == set(forum.threads)

    def test_gzip_roundtrip(self, tmp_path):
        forum = _forum()
        path = tmp_path / "f.jsonl.gz"
        save_forum(forum, path)
        assert load_forum(path).n_messages == forum.n_messages

    def test_message_contents_preserved(self, tmp_path):
        forum = _forum(n_users=1)
        path = tmp_path / "f.jsonl"
        save_forum(forum, path)
        loaded = load_forum(path)
        original = forum.users["user0"].messages
        again = loaded.users["user0"].messages
        assert [m.to_dict() for m in original] == \
            [m.to_dict() for m in again]


class TestStreaming:
    def test_iter_user_records(self, tmp_path):
        path = tmp_path / "f.jsonl"
        save_forum(_forum(n_users=5), path)
        records = list(iter_user_records(path))
        assert len(records) == 5
        assert all(len(r.messages) == 2 for r in records)

    def test_load_with_keep_predicate(self, tmp_path):
        path = tmp_path / "f.jsonl"
        save_forum(_forum(n_users=5), path)
        loaded = load_forum(path, keep=lambda r: r.alias < "user2")
        assert set(loaded.users) == {"user0", "user1"}


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_forum(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"alias": "x"}) + "\n")
        with pytest.raises(DatasetError):
            load_forum(path)

    def test_bad_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_forum(_forum(n_users=1), path)
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(DatasetError):
            load_forum(path)

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        header = {"schema": 999, "kind": "forum-header", "name": "f"}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(DatasetError):
            load_forum(path)

    def test_duplicate_alias(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        save_forum(_forum(n_users=1), path)
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "a") as fh:
            fh.write(lines[1])
        with pytest.raises(DatasetError):
            load_forum(path)


class TestWorldIO:
    def test_save_and_load_world(self, tmp_path):
        forums = [_forum("alpha"), _forum("beta")]
        paths = save_world(forums, tmp_path)
        assert len(paths) == 2
        loaded = load_world(tmp_path)
        assert set(loaded) == {"alpha", "beta"}

    def test_load_world_empty_dir(self, tmp_path):
        with pytest.raises(DatasetError):
            load_world(tmp_path)

    def test_load_world_not_a_dir(self, tmp_path):
        with pytest.raises(DatasetError):
            load_world(tmp_path / "missing")
