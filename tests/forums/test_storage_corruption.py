"""Crash-safety tests for JSONL storage: torn writes, damaged files."""

import json

import pytest

from repro.errors import DatasetError
from repro.forums import storage
from repro.forums.storage import (
    iter_user_records,
    load_forum,
    load_world,
    save_forum,
)
from repro.obs.metrics import counter

_RECOVERED = counter("storage_recovered_records_total")


@pytest.fixture
def saved(world, tmp_path):
    path = tmp_path / "tmg.jsonl"
    save_forum(world.forums["tmg"], path)
    return path


def _lines(path):
    return path.read_text().splitlines()


def _write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n")


class TestCorruptedLines:
    def test_bit_flipped_line_raises(self, saved):
        lines = _lines(saved)
        # flip one bit in the opening brace of the first record line
        victim = bytearray(lines[1].encode("utf-8"))
        victim[0] ^= 0x08  # '{' -> 's': guaranteed invalid JSON
        lines[1] = victim.decode("utf-8", errors="replace")
        _write_lines(saved, lines)
        with pytest.raises(DatasetError):
            load_forum(saved)

    def test_non_json_line_raises_with_lineno(self, saved):
        lines = _lines(saved)
        lines[2] = "!! scribble !!"
        _write_lines(saved, lines)
        with pytest.raises(DatasetError, match=r":3: invalid JSON"):
            load_forum(saved)

    def test_wrong_shape_record_raises(self, saved):
        lines = _lines(saved)
        lines[1] = json.dumps({"alias": "ghost"})  # missing fields
        _write_lines(saved, lines)
        with pytest.raises(DatasetError, match="malformed user record"):
            load_forum(saved)

    def test_recover_skips_corrupt_lines(self, world, saved):
        lines = _lines(saved)
        lines[1] = "{torn"
        _write_lines(saved, lines)
        before = _RECOVERED.value
        forum = load_forum(saved, recover=True)
        assert forum.n_users == world.forums["tmg"].n_users - 1
        assert _RECOVERED.value == before + 1


class TestTruncation:
    def test_missing_trailer_records_raise(self, saved):
        lines = _lines(saved)
        _write_lines(saved, lines[:-3])
        with pytest.raises(DatasetError,
                           match="truncated dataset") as excinfo:
            load_forum(saved)
        assert "header promises" in str(excinfo.value)

    def test_half_written_last_line_raises(self, saved):
        text = saved.read_text()
        saved.write_text(text[:len(text) - 40])  # tear mid-record
        with pytest.raises(DatasetError):
            load_forum(saved)

    def test_surplus_records_raise(self, saved):
        lines = _lines(saved)
        lines.append(lines[-1].replace(
            json.loads(lines[-1])["alias"], "impostor"))
        _write_lines(saved, lines)
        with pytest.raises(DatasetError, match="overlong dataset"):
            load_forum(saved)

    def test_empty_tail_lines_are_harmless(self, world, saved):
        saved.write_text(saved.read_text() + "\n\n\n")
        forum = load_forum(saved)
        assert forum.n_users == world.forums["tmg"].n_users

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "void.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError, match="empty dataset"):
            load_forum(path)

    def test_recover_salvages_truncated_file(self, world, saved):
        lines = _lines(saved)
        _write_lines(saved, lines[:-3])
        forum = load_forum(saved, recover=True)
        assert forum.n_users == world.forums["tmg"].n_users - 3

    def test_iter_user_records_checks_completeness(self, saved):
        lines = _lines(saved)
        _write_lines(saved, lines[:-1])
        with pytest.raises(DatasetError, match="truncated dataset"):
            list(iter_user_records(saved))


class TestAtomicSave:
    def test_no_temp_file_left_behind(self, world, tmp_path):
        save_forum(world.forums["tmg"], tmp_path / "ok.jsonl")
        assert [p.name for p in tmp_path.iterdir()] == ["ok.jsonl"]

    def test_crash_mid_save_preserves_previous(self, world, tmp_path,
                                               monkeypatch):
        path = tmp_path / "tmg.jsonl"
        save_forum(world.forums["tmg"], path)
        good = path.read_text()

        def explode(target):
            raise OSError("power loss")

        monkeypatch.setattr(storage, "_fsync_path", explode)
        with pytest.raises(OSError):
            save_forum(world.forums["dm"], path)
        monkeypatch.undo()

        # previous version intact, no torn temp file
        assert path.read_text() == good
        assert not list(tmp_path.glob("*.tmp"))
        assert load_forum(path).name == "tmg"

    def test_gzip_atomic_roundtrip(self, world, tmp_path):
        path = tmp_path / "tmg.jsonl.gz"
        save_forum(world.forums["tmg"], path)
        assert not list(tmp_path.glob("*.tmp"))
        forum = load_forum(path)
        assert forum.n_users == world.forums["tmg"].n_users

    def test_load_world_ignores_stale_temp(self, world, tmp_path):
        save_forum(world.forums["tmg"], tmp_path / "tmg.jsonl")
        # a crashed non-atomic writer left a torn staging file behind
        (tmp_path / "dm.jsonl.tmp").write_text("{half a head")
        forums = load_world(tmp_path)
        assert sorted(forums) == ["tmg"]
