"""Unit tests for the Table I topic taxonomy (repro.forums.topics)."""

import pytest

from repro.forums import topics


class TestTableI:
    def test_thirteen_rows_as_printed(self):
        # the paper says "12 topics" but Table I prints 13 rows; we
        # encode the table as printed
        assert len(topics.TABLE_I) == 13

    def test_drugs_is_dominant_topic(self):
        drugs = topics.TOPICS_BY_NAME["Drugs"]
        assert drugs.message_share == max(
            t.message_share for t in topics.TABLE_I)

    def test_flagships_match_paper(self):
        assert topics.TOPICS_BY_NAME["Drugs"].flagship == \
            "r/DarkNetMarkets"
        assert topics.TOPICS_BY_NAME["Politics"].flagship == "r/politics"
        assert topics.TOPICS_BY_NAME["Cryptocurrencies"].flagship == \
            "r/bitcoin"

    def test_subreddit_counts_sum(self):
        # 18+39+117+166+15+72+18+43+24+12+11+52+61 = 648 labelled rows
        total = sum(t.n_subreddits for t in topics.TABLE_I)
        assert total == 648

    def test_every_topic_has_keywords(self):
        for spec in topics.TABLE_I:
            assert len(spec.keywords) >= 5

    def test_topic_names_order(self):
        names = topics.topic_names()
        assert names[0] == "Culture"
        assert names[-1] == "Videogame"


class TestSubredditNames:
    def test_flagship_first(self):
        spec = topics.TOPICS_BY_NAME["Drugs"]
        names = topics.subreddit_names(spec, 3)
        assert names[0] == "r/DarkNetMarkets"
        assert len(names) == 3

    def test_default_count_is_paper_count(self):
        spec = topics.TOPICS_BY_NAME["Financial"]
        assert len(topics.subreddit_names(spec)) == spec.n_subreddits

    def test_zero_count(self):
        spec = topics.TABLE_I[0]
        assert topics.subreddit_names(spec, 0) == []

    def test_names_unique(self):
        spec = topics.TOPICS_BY_NAME["Entertainment"]
        names = topics.subreddit_names(spec)
        assert len(names) == len(set(names))


class TestWeights:
    def test_message_share_weights_normalized(self):
        weights = topics.message_share_weights()
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)

    def test_darknet_topic_is_drugs(self):
        assert topics.darknet_topic().name == "Drugs"
