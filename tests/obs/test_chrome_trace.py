"""Chrome Trace Event export: schema, worker lanes, CLI wiring."""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.cli import main
from repro.obs.manifest import load_manifest, manifest_path_for
from repro.obs.report import (
    build_trace_document,
    export_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import (
    disable_tracing,
    enable_tracing,
    reset_trace,
    span,
)
from repro.perf.parallel import GATE_ENV, ParallelExecutor

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def clean_tracer(monkeypatch):
    # Worker-lane tests assert actual forking: keep the available-core
    # gate out of the way on single-core CI boxes.
    monkeypatch.setenv(GATE_ENV, "0")
    reset_trace()
    yield
    disable_tracing()
    reset_trace()


def _assert_valid_chrome(document):
    """The subset of the Trace Event format spec we rely on."""
    assert set(document) == {"traceEvents", "displayTimeUnit",
                             "otherData"}
    assert document["displayTimeUnit"] == "ms"
    for event in document["traceEvents"]:
        assert isinstance(event["name"], str) and event["name"]
        assert event["ph"] in ("X", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float))
            assert event["ts"] >= 0
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert isinstance(event["args"], dict)
        else:
            assert event["name"] == "process_name"
            assert "name" in event["args"]
    # The whole document must survive a JSON round-trip.
    assert json.loads(json.dumps(document)) == document


class TestExport:
    def test_nested_spans_become_x_events(self):
        enable_tracing()
        with span("outer", stage="demo"):
            with span("inner"):
                time.sleep(0.002)
        document = export_chrome_trace(build_trace_document())
        _assert_valid_chrome(document)
        x_events = [e for e in document["traceEvents"]
                    if e["ph"] == "X"]
        by_name = {e["name"]: e for e in x_events}
        assert set(by_name) == {"outer", "inner"}
        outer, inner = by_name["outer"], by_name["inner"]
        # The child starts inside the parent on the shared timeline.
        assert inner["ts"] >= outer["ts"]
        assert inner["dur"] <= outer["dur"]
        assert outer["args"]["stage"] == "demo"
        assert "cpu_ms" in outer["args"]

    def test_main_process_named_darklight(self):
        enable_tracing()
        with span("solo"):
            pass
        document = export_chrome_trace(build_trace_document())
        names = {e["pid"]: e["args"]["name"]
                 for e in document["traceEvents"] if e["ph"] == "M"}
        assert names[os.getpid()] == "darklight"

    def test_trace_version_carried_in_other_data(self):
        enable_tracing()
        with span("solo"):
            pass
        document = export_chrome_trace(build_trace_document())
        assert document["otherData"]["trace_version"] == 2

    def test_pre_v2_spans_laid_out_sequentially(self):
        # Old trace files carry no ts_us/pid/tid; roots must still
        # render, one after another from t=0.
        legacy = {"version": 1, "spans": [
            {"name": "a", "wall_ms": 10.0, "status": "ok"},
            {"name": "b", "wall_ms": 5.0, "status": "ok"},
        ]}
        document = export_chrome_trace(legacy)
        _assert_valid_chrome(document)
        a, b = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert a["ts"] == 0.0 and a["dur"] == 10000.0
        assert b["ts"] == 10000.0 and b["dur"] == 5000.0

    def test_error_spans_flagged(self):
        enable_tracing()
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        document = export_chrome_trace(build_trace_document())
        (event,) = [e for e in document["traceEvents"]
                    if e["ph"] == "X"]
        assert event["cat"] == "error"
        assert "ValueError" in event["args"]["error"]

    def test_empty_trace_exports_cleanly(self):
        document = export_chrome_trace({"version": 2, "spans": []})
        _assert_valid_chrome(document)
        assert [e for e in document["traceEvents"]
                if e["ph"] == "X"] == []


@pytest.mark.skipif(not _HAS_FORK, reason="needs fork start method")
class TestWorkerLanes:
    def test_two_workers_render_as_distinct_lanes(self, tmp_path):
        def task(x):
            with span("lane.task", item=x):
                time.sleep(0.005)
            return x

        enable_tracing()
        with span("lane.restage"):
            ParallelExecutor(workers=2).map(task, range(24))
        path = write_chrome_trace(tmp_path / "workers.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        _assert_valid_chrome(document)
        task_events = [e for e in document["traceEvents"]
                       if e["ph"] == "X" and e["name"] == "lane.task"]
        assert len(task_events) == 24
        worker_lanes = {(e["pid"], e["tid"]) for e in task_events}
        worker_pids = {pid for pid, _ in worker_lanes}
        # Acceptance: a --workers 2 run produces >= 2 distinct worker
        # lanes, none of them the parent's.
        assert os.getpid() not in worker_pids
        assert len(worker_pids) >= 2
        lane_names = {e["args"]["name"]
                      for e in document["traceEvents"]
                      if e["ph"] == "M"}
        for pid in worker_pids:
            assert f"worker-{pid}" in lane_names

    def test_worker_timestamps_share_the_parent_clock(self):
        def task(x):
            with span("clock.task"):
                time.sleep(0.002)
            return x

        enable_tracing()
        with span("clock.parent"):
            ParallelExecutor(workers=2).map(task, range(8))
        document = export_chrome_trace(build_trace_document())
        events = {e["name"]: e for e in document["traceEvents"]
                  if e["ph"] == "X"}
        parent = events["clock.parent"]
        for event in document["traceEvents"]:
            if event["ph"] == "X" and event["name"] == "clock.task":
                assert event["ts"] >= parent["ts"]
                assert (event["ts"] + event["dur"]
                        <= parent["ts"] + parent["dur"] + 1000.0)


class TestCliChromeTrace:
    @pytest.fixture(scope="class")
    def world_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("chrome-world")
        code = main([
            "generate", "--out", str(out), "--seed", "5",
            "--reddit-users", "10", "--tmg-users", "8",
            "--dm-users", "6", "--tmg-dm-overlap", "2",
            "--reddit-dark-overlap", "2",
        ])
        assert code == 0
        return out

    def test_trace_chrome_flag_writes_valid_file_and_manifest(
            self, world_dir, tmp_path):
        chrome = tmp_path / "run.chrome.json"
        code = main([
            "--trace-chrome", str(chrome), "link",
            "--known", str(world_dir / "dm.jsonl"),
            "--unknown", str(world_dir / "tmg.jsonl"),
            "--threshold", "0.5",
        ])
        disable_tracing()
        assert code == 0
        document = json.loads(chrome.read_text(encoding="utf-8"))
        _assert_valid_chrome(document)
        names = {e["name"] for e in document["traceEvents"]}
        assert "linker.link" in names
        manifest = load_manifest(manifest_path_for(chrome))
        assert manifest["command"] == "link"
        assert manifest["inputs"]["known"]["sha256"]
