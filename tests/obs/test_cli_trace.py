"""CLI telemetry: --trace writes valid JSON, stats renders it."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.spans import disable_tracing, iter_spans


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace-world")
    code = main([
        "generate", "--out", str(out), "--seed", "5",
        "--reddit-users", "10", "--tmg-users", "8", "--dm-users", "6",
        "--tmg-dm-overlap", "2", "--reddit-dark-overlap", "2",
    ])
    assert code == 0
    return out


@pytest.fixture(scope="module")
def trace_file(world_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "trace.json"
    code = main([
        "--trace", str(path), "link",
        "--known", str(world_dir / "dm.jsonl"),
        "--unknown", str(world_dir / "tmg.jsonl"),
        "--threshold", "0.5",
    ])
    disable_tracing()  # the CLI enabled process-wide tracing
    assert code == 0
    return path


class TestTraceFile:
    def test_valid_json_with_expected_keys(self, trace_file):
        document = json.loads(trace_file.read_text(encoding="utf-8"))
        assert set(document) >= {"version", "spans", "metrics",
                                 "metadata"}
        assert document["metadata"]["command"] == "link"

    def test_contains_nested_spans_for_both_stages(self, trace_file):
        document = json.loads(trace_file.read_text(encoding="utf-8"))
        nodes = [n for root in document["spans"]
                 for n in iter_spans(root)]
        names = {n["name"] for n in nodes}
        assert {"linker.link", "linker.stage1",
                "linker.stage2"} <= names
        for node in nodes:
            if node["name"] in ("linker.stage1", "linker.stage2"):
                assert node["wall_ms"] > 0

    def test_metrics_snapshot_included(self, trace_file):
        document = json.loads(trace_file.read_text(encoding="utf-8"))
        metrics = document["metrics"]
        accepted = metrics["attribution_accepted_total"]["value"]
        rejected = metrics["attribution_rejected_total"]["value"]
        assert accepted + rejected > 0


class TestStatsCommand:
    def test_stats_renders_summary(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "per-stage totals" in out
        assert "linker.stage2" in out
        assert "slowest spans" in out
        assert "attribution_accepted_total" in out
        assert "trace tree" in out

    def test_stats_missing_file_fails(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_stats_invalid_json_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["stats", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_stats_missing_spans_key_fails(self, tmp_path, capsys):
        bad = tmp_path / "nospans.json"
        bad.write_text(json.dumps({"metrics": {}}), encoding="utf-8")
        assert main(["stats", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_stats_tolerates_zero_spans(self, tmp_path, capsys):
        # A run that recorded nothing still declared "spans"; stats
        # must render, not crash (regression test).
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"version": 2, "spans": [],
                                     "metrics": {}}),
                         encoding="utf-8")
        assert main(["stats", str(empty)]) == 0
        out = capsys.readouterr().out
        assert "(no spans recorded)" in out
        assert "(no metrics recorded)" in out

    def test_stats_tolerates_null_spans(self, tmp_path, capsys):
        degenerate = tmp_path / "null.json"
        degenerate.write_text(json.dumps({"version": 2,
                                          "spans": None}),
                              encoding="utf-8")
        assert main(["stats", str(degenerate)]) == 0
        assert "(no spans recorded)" in capsys.readouterr().out

    def test_stats_tolerates_missing_metrics_section(self, tmp_path,
                                                     capsys):
        pre_metrics = tmp_path / "old.json"
        pre_metrics.write_text(json.dumps({"version": 1, "spans": [
            {"name": "linker.link", "wall_ms": 3.0, "cpu_ms": 2.0,
             "status": "ok"},
        ]}), encoding="utf-8")
        assert main(["stats", str(pre_metrics)]) == 0
        out = capsys.readouterr().out
        assert "linker.link" in out
        assert "(no metrics recorded)" in out


class TestLinkJson:
    def test_link_json_output(self, world_dir, capsys):
        code = main([
            "link",
            "--known", str(world_dir / "dm.jsonl"),
            "--unknown", str(world_dir / "tmg.jsonl"),
            "--threshold", "0.5", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert "matches" in document
        assert "candidate_scores" in document
        assert document["report"]["threshold"] == 0.5
        for match in document["matches"]:
            assert set(match) == {"unknown_id", "candidate_id",
                                  "score", "accepted",
                                  "first_stage_score"}
