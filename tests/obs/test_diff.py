"""Regression diffing: metric direction, bench rows, CLI gating."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs.diff import (
    diff_benchmarks,
    diff_metrics,
    diff_traces,
    metric_direction,
    render_diff,
    render_trace_diff,
)


def _bench_doc(**overrides):
    row = {"n_known": 2000, "n_unknown": 200, "workers": 4,
           "fit_s": 1.0, "restage_cached_s": 2.0,
           "restage_speedup": 4.0, "outputs_identical": True}
    row.update(overrides)
    return {"workers": 4, "sizes": [row]}


class TestMetricDirection:
    @pytest.mark.parametrize("name", [
        "fit_s", "restage_cached_s", "parallel_fork_ms",
        "parallel_pickle_bytes", "peak_rss_mb", "rss_kb",
    ])
    def test_lower_is_better(self, name):
        assert metric_direction(name) == "lower"

    @pytest.mark.parametrize("name", [
        "restage_speedup", "links_per_s", "scan_throughput",
        "roc_auc", "stage2_precision",
    ])
    def test_higher_is_better(self, name):
        assert metric_direction(name) == "higher"

    @pytest.mark.parametrize("name", ["n_known", "workers", "count"])
    def test_unknown_names_ungated(self, name):
        assert metric_direction(name) is None


class TestDiffMetrics:
    def test_injected_25pct_slowdown_flagged_at_20pct(self):
        entries = diff_metrics({"fit_s": 1.0}, {"fit_s": 1.25},
                               threshold=0.20)
        (entry,) = entries
        assert entry["regressed"]
        assert entry["ratio"] == 1.25

    def test_within_threshold_passes(self):
        (entry,) = diff_metrics({"fit_s": 1.0}, {"fit_s": 1.1},
                                threshold=0.20)
        assert not entry["regressed"]

    def test_speedup_drop_is_a_regression(self):
        (entry,) = diff_metrics({"restage_speedup": 4.0},
                                {"restage_speedup": 3.0},
                                threshold=0.20)
        assert entry["regressed"]

    def test_speedup_gain_is_not(self):
        (entry,) = diff_metrics({"restage_speedup": 4.0},
                                {"restage_speedup": 6.0},
                                threshold=0.20)
        assert not entry["regressed"]

    def test_noise_floor_suppresses_tiny_baselines(self):
        # A 200x blow-up of a sub-millisecond timing is scheduler
        # noise, not a regression.
        (entry,) = diff_metrics({"fit_s": 0.0005}, {"fit_s": 0.1},
                                threshold=0.20, min_value=1e-3)
        assert not entry["regressed"]

    def test_undirected_metrics_never_gate(self):
        (entry,) = diff_metrics({"count": 10}, {"count": 1000})
        assert not entry["regressed"]

    def test_booleans_and_non_numerics_skipped(self):
        entries = diff_metrics(
            {"outputs_identical": True, "label": "a", "fit_s": 1.0},
            {"outputs_identical": False, "label": "b", "fit_s": 1.0})
        assert [e["metric"] for e in entries] == ["fit_s"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            diff_metrics({}, {}, threshold=-0.1)


class TestDiffBenchmarks:
    def test_identical_documents_have_no_regressions(self):
        doc = _bench_doc()
        result = diff_benchmarks(doc, doc)
        assert result["regressions"] == []
        assert result["only_old"] == result["only_new"] == []

    def test_row_regression_surfaces_with_its_key(self):
        result = diff_benchmarks(_bench_doc(),
                                 _bench_doc(restage_cached_s=2.6),
                                 threshold=0.20)
        (regression,) = result["regressions"]
        assert regression["metric"] == "restage_cached_s"
        assert "n_known=2000" in regression["key"]

    def test_key_fields_not_diffed_as_metrics(self):
        result = diff_benchmarks(_bench_doc(), _bench_doc())
        metrics = {e["metric"] for row in result["rows"]
                   for e in row["entries"]}
        assert metrics.isdisjoint({"n_known", "n_unknown", "workers"})

    def test_unmatched_rows_reported_not_gated(self):
        old = _bench_doc()
        new = _bench_doc(n_known=50000)
        result = diff_benchmarks(old, new)
        assert result["rows"] == []
        assert result["regressions"] == []
        assert len(result["only_old"]) == 1
        assert len(result["only_new"]) == 1

    def test_render_flags_regressions(self):
        text = render_diff(diff_benchmarks(
            _bench_doc(), _bench_doc(fit_s=2.0), threshold=0.20))
        assert "REGRESSION" in text
        assert "1 regression(s) beyond 20% threshold" in text

    def test_render_clean_diff(self):
        text = render_diff(diff_benchmarks(_bench_doc(), _bench_doc()))
        assert "REGRESSION" not in text
        assert "0 regression(s)" in text


def _trace_doc(wall_ms):
    return {"version": 2, "metrics": {}, "spans": [
        {"name": "linker.restage", "wall_ms": wall_ms,
         "cpu_ms": wall_ms, "status": "ok"},
    ]}


class TestDiffTraces:
    def test_stage_slowdown_flagged(self):
        result = diff_traces(_trace_doc(100.0), _trace_doc(130.0),
                             threshold=0.20)
        (regression,) = result["regressions"]
        assert regression["stage"] == "linker.restage"
        assert regression["ratio"] == pytest.approx(1.3)

    def test_identical_traces_clean(self):
        result = diff_traces(_trace_doc(100.0), _trace_doc(100.0))
        assert result["regressions"] == []

    def test_sub_min_value_stages_never_gate(self):
        result = diff_traces(_trace_doc(0.5), _trace_doc(50.0),
                             threshold=0.20, min_value=1.0)
        assert result["regressions"] == []

    def test_render_lists_stages(self):
        text = render_trace_diff(
            diff_traces(_trace_doc(100.0), _trace_doc(130.0)))
        assert "linker.restage" in text
        assert "REGRESSION" in text


class TestBenchDiffCli:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_identical_inputs_exit_zero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _bench_doc())
        new = self._write(tmp_path, "new.json", _bench_doc())
        assert main(["bench-diff", old, new]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _bench_doc())
        new = self._write(tmp_path, "new.json",
                          _bench_doc(restage_cached_s=2.5))
        assert main(["bench-diff", old, new,
                     "--threshold", "0.2"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_warn_only_reports_but_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _bench_doc())
        new = self._write(tmp_path, "new.json",
                          _bench_doc(restage_cached_s=2.5))
        assert main(["bench-diff", old, new, "--warn-only"]) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_loose_threshold_tolerates_more(self, tmp_path):
        old = self._write(tmp_path, "old.json", _bench_doc())
        new = self._write(tmp_path, "new.json",
                          _bench_doc(restage_cached_s=2.5))
        assert main(["bench-diff", old, new,
                     "--threshold", "0.5"]) == 0

    def test_json_output_is_the_diff_document(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _bench_doc())
        new = self._write(tmp_path, "new.json",
                          _bench_doc(fit_s=5.0))
        assert main(["bench-diff", old, new, "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["threshold"] == pytest.approx(0.20)
        assert document["regressions"]

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _bench_doc())
        assert main(["bench-diff", old,
                     str(tmp_path / "absent.json")]) == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_json_fails_cleanly(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _bench_doc())
        bad = tmp_path / "bad.json"
        bad.write_text("{oops", encoding="utf-8")
        assert main(["bench-diff", old, str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestStatsCompareCli:
    def test_compare_renders_stage_diff(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        first.write_text(json.dumps(_trace_doc(100.0)),
                         encoding="utf-8")
        second.write_text(json.dumps(_trace_doc(130.0)),
                          encoding="utf-8")
        assert main(["stats", str(first),
                     "--compare", str(second)]) == 0
        out = capsys.readouterr().out
        assert "stage diff" in out
        assert "linker.restage" in out
        assert "REGRESSION" in out
