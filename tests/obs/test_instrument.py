"""Tests for the @traced decorator, including the no-op fast path."""

from __future__ import annotations

import pytest

from repro.obs.instrument import traced
from repro.obs.spans import (
    disable_tracing,
    enable_tracing,
    get_tracer,
    reset_trace,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    disable_tracing()
    reset_trace()
    yield
    disable_tracing()
    reset_trace()


class TestTraced:
    def test_bare_decorator_uses_qualname(self):
        @traced
        def compute(x):
            return x * 2

        assert compute(3) == 6
        assert "compute" in compute.__traced_name__

    def test_named_decorator_records_span(self):
        @traced("custom.name", stage=2)
        def compute(x):
            return x + 1

        enable_tracing()
        assert compute(1) == 2
        (root,) = get_tracer().roots()
        assert root.name == "custom.name"
        assert root.attributes == {"stage": 2}

    def test_noop_mode_records_nothing(self):
        @traced("quiet")
        def compute():
            return 42

        assert compute() == 42
        assert get_tracer().roots() == []

    def test_noop_mode_preserves_metadata_and_result(self):
        @traced("meta")
        def documented(a, b=2):
            """docstring survives wrapping"""
            return a + b

        assert documented.__doc__ == "docstring survives wrapping"
        assert documented.__name__ == "documented"
        assert documented(1, b=3) == 4

    def test_exception_propagates_in_both_modes(self):
        @traced("raises")
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            boom()
        enable_tracing()
        with pytest.raises(RuntimeError):
            boom()
        (root,) = get_tracer().roots()
        assert root.status == "error"

    def test_noop_overhead_path_is_cheap(self):
        """The disabled wrapper must not build spans or kwargs dicts.

        We can't assert nanoseconds portably, but we can assert the
        structural property the <2% budget relies on: with tracing off
        the call count on the tracer's span machinery is zero.
        """
        calls = []
        tracer = get_tracer()
        original = tracer.span

        def spying_span(*a, **kw):
            calls.append(a)
            return original(*a, **kw)

        tracer.span = spying_span
        try:
            @traced("hot")
            def hot():
                return 1

            for _ in range(100):
                hot()
            assert calls == []  # fast path never touched span()
            enable_tracing()
            hot()
            assert len(calls) == 1
        finally:
            tracer.span = original
