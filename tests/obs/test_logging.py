"""Tests for structured logging: formats, env overrides, levels."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.errors import ConfigurationError
from repro.obs.logging import (
    LOG_FORMAT_ENV,
    LOG_LEVEL_ENV,
    configure_logging,
    get_logger,
)


@pytest.fixture()
def capture():
    stream = io.StringIO()
    yield stream
    # detach the handler so other tests are unaffected
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestFormats:
    def test_kv_format(self, capture):
        configure_logging(level="INFO", fmt="kv", stream=capture)
        get_logger("repro.test").info("link.done", accepted=3, k=10)
        line = capture.getvalue().strip()
        assert "INFO" in line
        assert "repro.test" in line
        assert "link.done" in line
        assert "accepted=3" in line
        assert "k=10" in line

    def test_kv_quotes_values_with_spaces(self, capture):
        configure_logging(level="INFO", fmt="kv", stream=capture)
        get_logger("repro.test").info("evt", msg="two words")
        assert "msg='two words'" in capture.getvalue()

    def test_json_format_is_valid_json(self, capture):
        configure_logging(level="INFO", fmt="json", stream=capture)
        get_logger("repro.test").info("link.done", accepted=3)
        record = json.loads(capture.getvalue().strip())
        assert record["event"] == "link.done"
        assert record["accepted"] == 3
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"
        assert "ts" in record


class TestEnvOverrides:
    def test_env_level(self, capture, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "DEBUG")
        configure_logging(stream=capture)
        get_logger("repro.test").debug("dbg")
        assert "dbg" in capture.getvalue()

    def test_env_format(self, capture, monkeypatch):
        monkeypatch.setenv(LOG_FORMAT_ENV, "json")
        configure_logging(level="INFO", stream=capture)
        get_logger("repro.test").info("evt")
        json.loads(capture.getvalue().strip())

    def test_explicit_beats_env(self, capture, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "DEBUG")
        configure_logging(level="ERROR", stream=capture)
        get_logger("repro.test").info("hidden")
        assert capture.getvalue() == ""

    def test_default_level_is_warning(self, capture, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        configure_logging(stream=capture)
        log = get_logger("repro.test")
        log.info("hidden")
        log.warning("shown")
        out = capture.getvalue()
        assert "hidden" not in out
        assert "shown" in out

    def test_bad_level_raises(self):
        with pytest.raises(ConfigurationError):
            configure_logging(level="LOUD")

    def test_bad_format_raises(self):
        with pytest.raises(ConfigurationError):
            configure_logging(fmt="xml")


class TestLoggerNames:
    def test_names_rerooted_under_repro(self):
        log = get_logger("eval.foo")
        assert log.stdlib.name == "repro.eval.foo"

    def test_repro_names_untouched(self):
        log = get_logger("repro.core.linker")
        assert log.stdlib.name == "repro.core.linker"

    def test_reconfigure_replaces_handler(self, capture):
        configure_logging(level="INFO", stream=capture)
        configure_logging(level="INFO", stream=capture)
        root = logging.getLogger("repro")
        obs_handlers = [h for h in root.handlers
                        if getattr(h, "_repro_obs", False)]
        assert len(obs_handlers) == 1

    def test_exception_logs_exc_name(self, capture):
        configure_logging(level="INFO", fmt="json", stream=capture)
        log = get_logger("repro.test")
        try:
            raise ValueError("boom")
        except ValueError:
            log.exception("failed", stage=2)
        record = json.loads(capture.getvalue().strip().splitlines()[0])
        assert record["exc"] == "ValueError"
        assert record["stage"] == 2
