"""Run manifests: determinism contract, digests, sidecar naming."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.errors import DatasetError
from repro.obs.manifest import (
    ENV_KNOBS,
    MANIFEST_VERSION,
    TIMING_FIELDS,
    build_manifest,
    file_digest,
    git_revision,
    load_manifest,
    manifest_equal,
    manifest_path_for,
    write_manifest,
)


@pytest.fixture
def input_file(tmp_path):
    path = tmp_path / "known.jsonl"
    path.write_text("hello", encoding="utf-8")
    return path


class TestDeterminism:
    def test_same_seed_runs_are_identical_modulo_timing(
            self, input_file):
        kwargs = dict(command="link", argv=["--seed", "7"],
                      config={"k": 10, "threshold": 0.419}, seed=7,
                      inputs={"known": input_file})
        first = build_manifest(elapsed_s=1.0, **kwargs)
        second = build_manifest(elapsed_s=99.0, **kwargs)
        assert manifest_equal(first, second)

    def test_different_seed_breaks_equality(self):
        assert not manifest_equal(build_manifest(seed=1),
                                  build_manifest(seed=2))

    def test_different_input_content_breaks_equality(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text("one", encoding="utf-8")
        first = build_manifest(inputs={"known": path})
        path.write_text("two", encoding="utf-8")
        second = build_manifest(inputs={"known": path})
        assert not manifest_equal(first, second)

    def test_timing_fields_are_the_documented_ones(self):
        assert set(TIMING_FIELDS) == {"created_at", "elapsed_s"}

    def test_custom_ignore_list(self):
        first = build_manifest(command="a")
        second = build_manifest(command="b")
        assert not manifest_equal(first, second)
        assert manifest_equal(first, second,
                              ignore=TIMING_FIELDS + ("command",))


class TestContents:
    def test_core_fields_present(self, input_file):
        manifest = build_manifest(command="link", seed=7,
                                  inputs={"known": input_file})
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["command"] == "link"
        assert manifest["seed"] == 7
        assert manifest["python"]
        assert manifest["platform"]
        assert manifest["created_at"]

    def test_input_digest_matches_sha256(self, input_file):
        manifest = build_manifest(inputs={"known": input_file})
        entry = manifest["inputs"]["known"]
        assert entry["sha256"] == hashlib.sha256(b"hello").hexdigest()
        assert entry["bytes"] == 5

    def test_missing_input_recorded_not_raised(self, tmp_path):
        manifest = build_manifest(
            inputs={"known": tmp_path / "absent.jsonl"})
        entry = manifest["inputs"]["known"]
        assert entry["sha256"] is None
        assert entry["bytes"] is None

    def test_env_records_only_set_knobs(self, monkeypatch):
        for knob in ENV_KNOBS:
            monkeypatch.delenv(knob, raising=False)
        assert build_manifest()["env"] == {}
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert build_manifest()["env"] == {"REPRO_WORKERS": "4"}

    def test_extra_fields_merged(self):
        manifest = build_manifest(extra={"bench": "linking"})
        assert manifest["bench"] == "linking"

    def test_git_revision_in_checkout(self):
        # The test suite runs inside the repo, so HEAD must resolve.
        rev = git_revision()
        assert rev is None or len(rev) == 40

    def test_file_digest_streams_large_file(self, tmp_path):
        path = tmp_path / "big.bin"
        payload = b"x" * (2 << 20)
        path.write_bytes(payload)
        entry = file_digest(path)
        assert entry["bytes"] == len(payload)
        assert entry["sha256"] == hashlib.sha256(payload).hexdigest()


class TestPersistence:
    def test_sidecar_naming(self):
        assert manifest_path_for("out/trace.json").name \
            == "trace.manifest.json"
        assert manifest_path_for("out/run.chrome.json").name \
            == "run.chrome.manifest.json"

    def test_write_load_roundtrip(self, tmp_path):
        manifest = build_manifest(command="link", seed=7)
        path = write_manifest(tmp_path / "m.json", manifest)
        loaded = load_manifest(path)
        assert manifest_equal(loaded, manifest, ignore=())

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_manifest(tmp_path / "absent.json")

    def test_load_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_manifest(bad)

    def test_load_unversioned_document_raises(self, tmp_path):
        bad = tmp_path / "plain.json"
        bad.write_text(json.dumps({"command": "link"}),
                       encoding="utf-8")
        with pytest.raises(DatasetError):
            load_manifest(bad)
