"""Tests for repro.obs.metrics: instruments, snapshot/reset/merge."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("c")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0

    def test_merge_adds(self):
        c = Counter("c")
        c.inc(2)
        c.merge({"type": "counter", "value": 5})
        assert c.value == 7

    def test_thread_safety(self):
        c = Counter("c")

        def bump():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10.0)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0

    def test_merge_takes_incoming_value(self):
        g = Gauge("g")
        g.set(1.0)
        g.merge({"type": "gauge", "value": 9.0})
        assert g.value == 9.0


class TestHistogramBuckets:
    def test_value_on_edge_goes_to_that_bucket(self):
        # edges 1, 2, 5: v <= edge lands in that bucket
        h = Histogram("h", buckets=(1, 2, 5))
        h.observe(1.0)        # bucket 0 (<= 1)
        h.observe(1.5)        # bucket 1 (<= 2)
        h.observe(2.0)        # bucket 1 (edge inclusive)
        h.observe(5.0)        # bucket 2
        h.observe(100.0)      # overflow bucket
        snap = h.snapshot()
        assert snap["counts"] == [1, 2, 1, 1]
        assert snap["count"] == 5

    def test_min_max_sum_mean(self):
        h = Histogram("h", buckets=(10,))
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 12.0
        assert h.mean == 4.0
        snap = h.snapshot()
        assert snap["min"] == 2.0
        assert snap["max"] == 6.0

    def test_counts_length_is_edges_plus_one(self):
        h = Histogram("h", buckets=(1, 2, 3))
        assert len(h.snapshot()["counts"]) == 4

    def test_empty_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1, 1, 2))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(2, 1))

    def test_reset(self):
        h = Histogram("h", buckets=(1,))
        h.observe(0.5)
        h.reset()
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["counts"] == [0, 0]
        assert snap["min"] is None


class TestHistogramPercentiles:
    def test_uniform_distribution_estimates(self):
        h = Histogram("h", buckets=tuple(range(10, 101, 10)))
        for v in range(1, 101):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["p50"] == pytest.approx(50.0)
        assert snap["p95"] == pytest.approx(95.0)
        assert snap["p99"] == pytest.approx(99.0)

    def test_percentile_method_matches_snapshot(self):
        h = Histogram("h", buckets=(1, 2, 5, 10))
        for v in (0.5, 1.5, 3.0, 7.0, 20.0):
            h.observe(v)
        assert h.percentile(50) == h.snapshot()["p50"]

    def test_empty_histogram_has_no_percentiles(self):
        h = Histogram("h", buckets=(1, 2))
        assert h.percentile(50) is None
        snap = h.snapshot()
        assert snap["p50"] is None
        assert snap["p99"] is None

    def test_estimates_clamped_to_observed_range(self):
        # One observation in a huge bucket: interpolation would invent
        # values up to the edge; clamping pins every percentile to it.
        h = Histogram("h", buckets=(100,))
        h.observe(7.0)
        assert h.percentile(1) == 7.0
        assert h.percentile(50) == 7.0
        assert h.percentile(99) == 7.0

    def test_overflow_bucket_bounded_by_observed_range(self):
        # Both observations sit in the open-ended overflow bucket;
        # the estimate must stay inside [min, max], never extrapolate.
        h = Histogram("h", buckets=(1,))
        for v in (500.0, 900.0):
            h.observe(v)
        assert 500.0 <= h.percentile(50) <= 900.0
        assert 500.0 <= h.percentile(99) <= 900.0

    def test_percentiles_monotone_in_q(self):
        h = Histogram("h", buckets=(1, 5, 10, 50, 100))
        for v in (0.2, 0.9, 3.0, 4.0, 8.0, 30.0, 70.0, 95.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"]


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")

    def test_kind_clash_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ConfigurationError):
            r.gauge("x")

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h", buckets=(1, 2)).observe(0.5)
        snap = r.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2}
        assert snap["g"] == {"type": "gauge", "value": 1.5}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["buckets"] == [1.0, 2.0]

    def test_snapshot_is_sorted(self):
        r = MetricsRegistry()
        r.counter("zz")
        r.counter("aa")
        assert list(r.snapshot()) == ["aa", "zz"]

    def test_reset_zeroes_but_keeps_instances(self):
        r = MetricsRegistry()
        c = r.counter("c")
        c.inc(5)
        r.reset()
        assert r.counter("c") is c
        assert c.value == 0

    def test_merge_roundtrip(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h", buckets=(1, 2)).observe(1.5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.histogram("h", buckets=(1, 2)).observe(0.5)
        b.merge(a.snapshot())
        snap = b.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["h"]["count"] == 2
        assert snap["h"]["counts"] == [1, 1, 0]

    def test_merge_creates_missing_instruments(self):
        a = MetricsRegistry()
        a.gauge("only_in_a").set(7.0)
        b = MetricsRegistry()
        b.merge(a.snapshot())
        assert b.gauge("only_in_a").value == 7.0

    def test_merge_histogram_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 3))
        with pytest.raises(ConfigurationError):
            b.merge(a.snapshot())

    def test_merge_unknown_type_raises(self):
        r = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            r.merge({"m": {"type": "summary", "value": 1}})
