"""Tests for trace persistence and the stats renderer."""

from __future__ import annotations

import json

import pytest

from repro.errors import DatasetError
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    build_trace_document,
    load_trace,
    render_metrics,
    render_stats,
    write_trace,
)
from repro.obs.spans import Tracer


@pytest.fixture()
def tracer():
    t = Tracer()
    t.enabled = True
    with t.span("root"):
        with t.span("child", k=3):
            pass
    return t


@pytest.fixture()
def registry():
    r = MetricsRegistry()
    r.counter("hits_total").inc(4)
    r.gauge("size").set(2.0)
    r.histogram("lat", buckets=(1, 10)).observe(0.5)
    return r


class TestPersistence:
    def test_build_document_combines_spans_and_metrics(self, tracer,
                                                       registry):
        document = build_trace_document(metadata={"scale": "small"},
                                        tracer=tracer,
                                        registry=registry)
        assert document["metadata"] == {"scale": "small"}
        assert document["metrics"]["hits_total"]["value"] == 4
        assert document["spans"][0]["name"] == "root"

    def test_write_then_load_roundtrip(self, tracer, registry,
                                       tmp_path):
        path = write_trace(tmp_path / "t.json", tracer=tracer,
                           registry=registry)
        loaded = load_trace(path)
        assert loaded["spans"][0]["children"][0]["name"] == "child"
        # file is plain JSON readable by anything
        json.loads(path.read_text(encoding="utf-8"))

    def test_load_missing_file_raises_dataset_error(self, tmp_path):
        with pytest.raises(DatasetError):
            load_trace(tmp_path / "absent.json")

    def test_load_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("][", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_trace(bad)

    def test_load_wrong_shape_raises(self, tmp_path):
        bad = tmp_path / "shape.json"
        bad.write_text(json.dumps([1, 2]), encoding="utf-8")
        with pytest.raises(DatasetError):
            load_trace(bad)


class TestRendering:
    def test_render_stats_sections(self, tracer, registry):
        document = build_trace_document(metadata={"command": "link"},
                                        tracer=tracer,
                                        registry=registry)
        text = render_stats(document)
        for expected in ("metadata", "per-stage totals",
                         "slowest spans", "metrics", "trace tree",
                         "root", "child", "hits_total"):
            assert expected in text

    def test_render_stats_empty_trace(self):
        text = render_stats({"spans": [], "metrics": {}})
        assert "no spans recorded" in text
        assert "no metrics recorded" in text

    def test_render_metrics_histogram_line(self, registry):
        lines = "\n".join(render_metrics(registry.snapshot()))
        assert "lat" in lines
        assert "count=1" in lines
