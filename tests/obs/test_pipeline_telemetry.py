"""End-to-end telemetry: the instrumented pipeline emits the expected
spans and its counters satisfy the accounting invariant

    attribution_accepted_total + attribution_rejected_total
        == number of unknown aliases linked
"""

from __future__ import annotations

import pytest

from repro.core.linker import AliasLinker
from repro.obs.metrics import get_registry
from repro.obs.spans import (
    disable_tracing,
    enable_tracing,
    get_trace,
    iter_spans,
    reset_trace,
)


@pytest.fixture(autouse=True)
def clean_trace():
    reset_trace()
    enable_tracing()
    yield
    disable_tracing()
    reset_trace()


@pytest.fixture(scope="module")
def linked(reddit_alter_egos):
    """One traced linking run over the session alter-ego dataset."""
    registry = get_registry()
    before = registry.snapshot()
    reset_trace()
    enable_tracing()
    linker = AliasLinker(threshold=0.5)
    linker.fit(reddit_alter_egos.originals)
    result = linker.link(reddit_alter_egos.alter_egos)
    trace = get_trace()
    after = registry.snapshot()
    disable_tracing()
    return reddit_alter_egos, result, trace, before, after


def _names(trace):
    return [node["name"] for root in trace["spans"]
            for node in iter_spans(root)]


def _counter_delta(before, after, name):
    old = before.get(name, {}).get("value", 0)
    return after.get(name, {}).get("value", 0) - old


class TestSpanEmission:
    def test_expected_span_names_present(self, linked):
        _, _, trace, _, _ = linked
        names = set(_names(trace))
        assert {"linker.fit", "linker.link", "linker.stage1",
                "linker.stage2", "kattribution.fit",
                "kattribution.reduce", "features.fit",
                "features.transform"} <= names

    def test_both_stages_nested_under_link(self, linked):
        _, _, trace, _, _ = linked
        link_roots = [r for r in trace["spans"]
                      if r["name"] == "linker.link"]
        assert len(link_roots) == 1
        child_names = {c["name"] for c in link_roots[0]["children"]}
        assert {"linker.stage1", "linker.restage"} <= child_names
        # stage-2 spans live under the restage fan-out span
        restage = [c for c in link_roots[0]["children"]
                   if c["name"] == "linker.restage"]
        stage2 = {c["name"] for r in restage for c in r["children"]}
        assert stage2 == {"linker.stage2"}

    def test_one_stage2_span_per_unknown(self, linked):
        dataset, _, trace, _, _ = linked
        stage2 = [n for n in _names(trace) if n == "linker.stage2"]
        assert len(stage2) == len(dataset.alter_egos)

    def test_stage_durations_nonzero(self, linked):
        _, _, trace, _, _ = linked
        for root in trace["spans"]:
            for node in iter_spans(root):
                if node["name"] in ("linker.stage1", "linker.stage2"):
                    assert node["wall_ms"] > 0


class TestCounterInvariants:
    def test_accepted_plus_rejected_equals_unknowns(self, linked):
        dataset, _, _, before, after = linked
        accepted = _counter_delta(before, after,
                                  "attribution_accepted_total")
        rejected = _counter_delta(before, after,
                                  "attribution_rejected_total")
        assert accepted + rejected == len(dataset.alter_egos)

    def test_counters_match_result(self, linked):
        dataset, result, _, before, after = linked
        accepted = _counter_delta(before, after,
                                  "attribution_accepted_total")
        assert accepted == len(result.accepted())

    def test_score_histogram_observed_once_per_unknown(self, linked):
        dataset, _, _, before, after = linked
        old = before.get("similarity_score", {}).get("count", 0)
        new = after["similarity_score"]["count"]
        assert new - old == len(dataset.alter_egos)

    def test_vocab_size_gauge_positive(self, linked):
        _, _, _, _, after = linked
        assert after["encoder_vocab_size"]["value"] > 0


class TestResultSerialization:
    def test_link_result_roundtrip(self, linked):
        from repro.core.linker import LinkResult

        _, result, _, _, _ = linked
        restored = LinkResult.from_dict(result.to_dict())
        assert restored.matches == result.matches
        assert restored.candidate_scores == result.candidate_scores

    def test_match_to_dict_field_list(self, linked):
        _, result, _, _, _ = linked
        data = result.matches[0].to_dict()
        assert set(data) == {"unknown_id", "candidate_id", "score",
                             "accepted", "first_stage_score"}
