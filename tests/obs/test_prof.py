"""Span-level resource profiling (repro.obs.prof)."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.obs import prof
from repro.obs.spans import (
    disable_tracing,
    enable_tracing,
    get_trace,
    reset_trace,
    span,
)
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def clean_state():
    reset_trace()
    prof.disable_profiling()
    yield
    prof.disable_profiling()
    disable_tracing()
    reset_trace()


def _root_spans():
    return get_trace()["spans"]


class TestResourcePayload:
    def test_profiled_span_carries_resources(self):
        enable_tracing()
        prof.enable_profiling()
        with span("work"):
            _ = [0] * 50_000
        (root,) = _root_spans()
        resources = root["resources"]
        assert set(resources) >= {"rss_kb", "rss_delta_kb",
                                  "peak_rss_kb", "gc_collections",
                                  "gc_objects"}
        assert resources["rss_kb"] > 0
        assert resources["peak_rss_kb"] > 0

    def test_alloc_stats_are_opt_in(self):
        enable_tracing()
        prof.enable_profiling()
        with span("lean"):
            pass
        prof.disable_profiling()
        prof.enable_profiling(alloc=True)
        with span("alloc"):
            _ = bytearray(256 * 1024)
        lean, alloc = _root_spans()
        assert "alloc_net_kb" not in lean["resources"]
        assert "alloc_net_kb" in alloc["resources"]
        assert "alloc_peak_kb" in alloc["resources"]
        assert alloc["resources"]["alloc_peak_kb"] >= 256

    def test_alloc_profiler_stops_its_own_tracemalloc(self):
        assert not tracemalloc.is_tracing()
        prof.enable_profiling(alloc=True)
        assert tracemalloc.is_tracing()
        prof.disable_profiling()
        assert not tracemalloc.is_tracing()

    def test_sampling_profiles_every_nth_span(self):
        enable_tracing()
        prof.enable_profiling(sample_every=2)
        for _ in range(4):
            with span("maybe"):
                pass
        payloads = [s.get("resources") for s in _root_spans()]
        assert [p is not None for p in payloads] == [True, False,
                                                    True, False]

    def test_invalid_sample_every_rejected(self):
        with pytest.raises(ConfigurationError):
            prof.ResourceProfiler(sample_every=0)

    def test_enable_disable_roundtrip(self):
        assert not prof.profiling_enabled()
        prof.enable_profiling()
        assert prof.profiling_enabled()
        assert prof.get_profiler() is not None
        prof.disable_profiling()
        assert not prof.profiling_enabled()
        assert prof.get_profiler() is None


class TestNoopFastPath:
    def test_unprofiled_span_has_no_resources_key(self):
        enable_tracing()
        with span("plain"):
            pass
        (root,) = _root_spans()
        assert "resources" not in root

    def test_profiler_off_allocates_nothing_on_hot_path(self):
        """With profiling off, no prof.py frame allocates anything on
        the span hot path — tracemalloc sees zero blocks from it."""
        enable_tracing()
        tracemalloc.start()
        try:
            tracemalloc.clear_traces()
            for _ in range(200):
                with span("hot"):
                    pass
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        prof_stats = snapshot.filter_traces(
            (tracemalloc.Filter(True, "*prof.py"),)
        ).statistics("filename")
        assert prof_stats == []

    def test_disabled_tracing_still_hands_out_shared_noop(self):
        prof.enable_profiling()
        a = span("x")
        b = span("y")
        assert a is b  # tracing off: shared no-op, nothing profiled


class TestEnvSwitch:
    def test_env_off_values(self, monkeypatch):
        for raw in ("", "0", "off", "false"):
            monkeypatch.setenv(prof.PROFILE_ENV, raw)
            assert prof.profiling_from_env() is None

    def test_env_on(self, monkeypatch):
        monkeypatch.setenv(prof.PROFILE_ENV, "1")
        profiler = prof.profiling_from_env()
        assert profiler is not None
        assert not profiler.alloc

    def test_env_alloc(self, monkeypatch):
        monkeypatch.setenv(prof.PROFILE_ENV, "alloc")
        profiler = prof.profiling_from_env()
        assert profiler is not None
        assert profiler.alloc

    def test_env_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(prof.PROFILE_ENV, "verbose")
        with pytest.raises(ConfigurationError):
            prof.profiling_from_env()


class TestRssHelpers:
    def test_read_rss_positive(self):
        assert prof.read_rss_kb() > 0

    def test_peak_rss_at_least_positive(self):
        assert prof.peak_rss_kb() > 0
