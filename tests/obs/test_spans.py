"""Tests for repro.obs.spans: nesting, exceptions, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.obs.spans import (
    Span,
    Tracer,
    aggregate_spans,
    iter_spans,
    render_flame,
)


@pytest.fixture()
def tracer():
    t = Tracer()
    t.enabled = True
    return t


class TestNesting:
    def test_children_attach_to_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        roots = tracer.roots()
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == \
            ["inner.a", "inner.b"]

    def test_three_levels_deep(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        (root,) = tracer.roots()
        assert root.children[0].children[0].name == "c"

    def test_durations_nonzero_and_nested_le_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(10_000))
        (root,) = tracer.roots()
        inner = root.children[0]
        assert root.wall_ms > 0
        assert inner.wall_ms > 0
        assert inner.wall_ms <= root.wall_ms

    def test_current_span_tracks_stack(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_attributes_recorded(self, tracer):
        with tracer.span("s", k=10, label="x") as s:
            s.set_attribute("extra", 1)
        (root,) = tracer.roots()
        assert root.attributes == {"k": 10, "label": "x", "extra": 1}


class TestExceptions:
    def test_exception_restores_active_span(self, tracer):
        with tracer.span("outer"):
            with pytest.raises(ValueError):
                with tracer.span("failing"):
                    raise ValueError("boom")
            # the active span must be back to "outer"
            assert tracer.current_span().name == "outer"
            with tracer.span("after"):
                pass
        (root,) = tracer.roots()
        assert [c.name for c in root.children] == ["failing", "after"]

    def test_exception_marks_status_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (root,) = tracer.roots()
        assert root.status == "error"
        assert "boom" in root.error
        assert root.wall_ms >= 0

    def test_ok_status_by_default(self, tracer):
        with tracer.span("fine"):
            pass
        assert tracer.roots()[0].status == "ok"


class TestDisabled:
    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("invisible"):
            pass
        assert t.roots() == []

    def test_disabled_span_is_shared_noop(self):
        t = Tracer()
        a = t.span("x")
        b = t.span("y")
        assert a is b  # no allocation on the fast path

    def test_timer_measures_even_when_disabled(self):
        t = Tracer()
        with t.timer("bench") as clock:
            sum(range(10_000))
        assert clock.wall_ms > 0
        assert t.roots() == []  # not recorded while disabled

    def test_timer_records_when_enabled(self):
        t = Tracer()
        t.enabled = True
        with t.timer("bench"):
            pass
        assert [s.name for s in t.roots()] == ["bench"]


class TestThreads:
    def test_each_thread_gets_own_stack(self, tracer):
        errors = []

        def worker(i):
            try:
                with tracer.span(f"thread-{i}"):
                    with tracer.span("child"):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        roots = tracer.roots()
        assert len(roots) == 8
        assert all(len(r.children) == 1 for r in roots)


class TestExportAndAnalysis:
    def _trace(self, tracer):
        with tracer.span("root", k=10):
            with tracer.span("stage"):
                pass
            with tracer.span("stage"):
                pass
        return tracer.to_dict()

    def test_to_dict_shape(self, tracer):
        trace = self._trace(tracer)
        assert trace["version"] == 2
        (root,) = trace["spans"]
        assert root["name"] == "root"
        assert root["attributes"] == {"k": 10}
        assert len(root["children"]) == 2
        # v2 places every span on a Chrome-trace timeline lane.
        assert root["ts_us"] > 0
        assert root["pid"] > 0
        assert root["tid"] > 0

    def test_iter_spans_walks_everything(self, tracer):
        trace = self._trace(tracer)
        names = [n["name"] for n in iter_spans(trace["spans"][0])]
        assert names == ["root", "stage", "stage"]

    def test_aggregate_spans_sums_by_name(self, tracer):
        trace = self._trace(tracer)
        totals = aggregate_spans(trace)
        assert totals["stage"]["calls"] == 2
        assert totals["root"]["calls"] == 1
        assert totals["root"]["wall_ms"] >= totals["stage"]["wall_ms"]

    def test_render_flame_collapses_siblings(self, tracer):
        trace = self._trace(tracer)
        text = render_flame(trace)
        assert "root" in text
        assert "stage [x2]" in text

    def test_render_flame_empty(self):
        assert "empty" in render_flame({"spans": []})

    def test_reset_drops_roots(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots() == []

    def test_span_repr_roundtrip_keys(self):
        s = Span("n", {"a": 1})
        s._start()
        s._finish()
        d = s.to_dict()
        assert set(d) >= {"name", "wall_ms", "cpu_ms", "status"}
