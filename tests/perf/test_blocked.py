"""Unit tests for blocked stage-1 scoring (repro.perf.blocked)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.similarity import cosine_similarity, top_k
from repro.core.tfidf import l2_normalize_rows
from repro.errors import ConfigurationError
from repro.perf.blocked import (
    BLOCK_SIZE_ENV,
    DEFAULT_BLOCK_SIZE,
    blocked_top_k,
    resolve_block_size,
)


def _random_matrix(rng, rows, cols, density=0.3):
    dense = rng.random((rows, cols)) * (rng.random((rows, cols)) < density)
    return l2_normalize_rows(sparse.csr_matrix(dense))


class TestResolveBlockSize:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(BLOCK_SIZE_ENV, raising=False)
        assert resolve_block_size() == DEFAULT_BLOCK_SIZE

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(BLOCK_SIZE_ENV, "128")
        assert resolve_block_size() == 128

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(BLOCK_SIZE_ENV, "128")
        assert resolve_block_size(64) == 64

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv(BLOCK_SIZE_ENV, "big")
        with pytest.raises(ConfigurationError):
            resolve_block_size()

    @pytest.mark.parametrize("size", [0, -4])
    def test_non_positive_rejected(self, size):
        with pytest.raises(ConfigurationError):
            resolve_block_size(size)


class TestEquivalence:
    @pytest.mark.parametrize("block", [1, 3, 7, 64, 1000])
    @pytest.mark.parametrize("k", [1, 5, 50])
    def test_matches_one_shot_exactly(self, block, k):
        rng = np.random.default_rng(block * 100 + k)
        queries = _random_matrix(rng, 9, 40)
        corpus = _random_matrix(rng, 37, 40)
        expected_idx, expected_val = top_k(
            cosine_similarity(queries, corpus), min(k, 37))
        got_idx, got_val = blocked_top_k(queries, corpus, k,
                                         block_size=block)
        np.testing.assert_array_equal(got_idx, expected_idx)
        np.testing.assert_array_equal(got_val, expected_val)

    def test_ties_across_block_boundary(self):
        # Duplicate corpus rows produce exactly equal scores; the fold
        # must keep the same (smallest) indices as the one-shot path
        # even when the duplicates land in different blocks.
        rng = np.random.default_rng(11)
        base = _random_matrix(rng, 4, 16)
        corpus = sparse.vstack([base] * 5, format="csr")  # 20 rows
        queries = base
        for block in (1, 2, 3, 4, 7):
            idx, val = blocked_top_k(queries, corpus, 8,
                                     block_size=block)
            exp_idx, exp_val = top_k(cosine_similarity(queries, corpus),
                                     8)
            np.testing.assert_array_equal(idx, exp_idx)
            np.testing.assert_array_equal(val, exp_val)

    def test_k_clamped_to_corpus(self):
        rng = np.random.default_rng(5)
        queries = _random_matrix(rng, 2, 8)
        corpus = _random_matrix(rng, 3, 8)
        idx, val = blocked_top_k(queries, corpus, 10, block_size=2)
        assert idx.shape == val.shape == (2, 3)

    def test_invalid_k_rejected(self):
        rng = np.random.default_rng(5)
        matrix = _random_matrix(rng, 2, 8)
        with pytest.raises(ConfigurationError):
            blocked_top_k(matrix, matrix, 0)


class TestMetrics:
    def test_blocks_counted(self):
        from repro.obs.metrics import get_registry

        rng = np.random.default_rng(2)
        queries = _random_matrix(rng, 3, 12)
        corpus = _random_matrix(rng, 10, 12)
        before = get_registry().snapshot().get(
            "stage1_blocks_total", {}).get("value", 0)
        blocked_top_k(queries, corpus, 2, block_size=4)
        after = get_registry().snapshot().get(
            "stage1_blocks_total", {}).get("value", 0)
        assert after == before + 3  # ceil(10 / 4)
