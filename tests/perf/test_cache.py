"""Unit tests for the profile cache (repro.perf.cache)."""

import numpy as np
import pytest

from repro.core import ngrams
from repro.core.documents import AliasDocument
from repro.obs.metrics import get_registry
from repro.perf.cache import ProfileCache


def _doc(doc_id, text, activity_hour=None):
    words = tuple(w for w in text.lower().split() if w.isalpha())
    activity = None
    if activity_hour is not None:
        activity = np.zeros(24)
        activity[activity_hour] = 1.0
    return AliasDocument(
        doc_id=doc_id, alias=doc_id, forum="f", text=text,
        words=words, timestamps=(), activity=activity)


DOC = _doc("a", "the quick brown fox jumps over the lazy dog", 3)
OTHER = _doc("b", "a different document with other words entirely")


def _value(name):
    return get_registry().snapshot().get(name, {}).get("value", 0)


class TestMemoization:
    def test_word_profile_computed_once(self):
        cache = ProfileCache()
        first = cache.word_profile(DOC)
        second = cache.word_profile(DOC)
        assert first is second

    def test_char_profile_computed_once(self):
        cache = ProfileCache()
        assert cache.char_profile(DOC) is cache.char_profile(DOC)

    def test_freq_features_computed_once(self):
        cache = ProfileCache()
        assert cache.freq_features(DOC) is cache.freq_features(DOC)

    def test_activity_row_computed_once(self):
        cache = ProfileCache()
        assert cache.activity_row(DOC, 24) is cache.activity_row(DOC, 24)

    def test_activity_row_keyed_by_bins(self):
        cache = ProfileCache()
        assert cache.activity_row(OTHER, 24).shape == (24,)
        assert cache.activity_row(OTHER, 12).shape == (12,)

    def test_activity_row_zero_filled_when_absent(self):
        cache = ProfileCache()
        row = cache.activity_row(OTHER, 24)
        assert np.all(row == 0.0)

    def test_activity_row_uses_document_profile(self):
        cache = ProfileCache()
        row = cache.activity_row(DOC, 24)
        assert row[3] == 1.0 and row.sum() == 1.0


class TestMetrics:
    def test_hit_and_miss_counters(self):
        cache = ProfileCache()
        misses = _value("profile_cache_misses_total")
        hits = _value("profile_cache_hits_total")
        cache.word_profile(DOC)
        cache.word_profile(DOC)
        assert _value("profile_cache_misses_total") == misses + 1
        assert _value("profile_cache_hits_total") == hits + 1

    def test_tokenizations_counted_per_encode(self):
        cache = ProfileCache()
        before = _value("tokenizations_total")
        cache.word_profile(DOC)
        cache.char_profile(DOC)
        cache.word_profile(DOC)  # hit: no new tokenization
        assert _value("tokenizations_total") == before + 2

    def test_disabled_cache_always_misses(self):
        cache = ProfileCache(enabled=False)
        before = _value("tokenizations_total")
        cache.word_profile(DOC)
        cache.word_profile(DOC)
        assert _value("tokenizations_total") == before + 2
        assert len(cache) == 0


class TestEquivalence:
    def test_disabled_cache_same_profiles(self):
        vocab = ngrams.WordVocab()
        on = ProfileCache(vocab=vocab)
        off = ProfileCache(vocab=vocab, enabled=False)
        a = on.word_profile(DOC)
        b = off.word_profile(DOC)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_shared_vocab_interning_order(self):
        # Two caches over one vocab must agree on word codes; over two
        # vocabs the codes depend on interning order and may differ.
        vocab = ngrams.WordVocab()
        one = ProfileCache(vocab=vocab)
        two = ProfileCache(vocab=vocab)
        one.word_profile(OTHER)  # interns OTHER's words first
        a = one.word_profile(DOC)
        b = two.word_profile(DOC)
        np.testing.assert_array_equal(a.codes, b.codes)


class TestMemoryControl:
    def test_nbytes_grows_and_drop_releases(self):
        cache = ProfileCache()
        assert cache.nbytes == 0
        cache.word_profile(DOC)
        cache.char_profile(DOC)
        cache.freq_features(DOC)
        cache.activity_row(DOC, 24)
        grown = cache.nbytes
        assert grown > 0 and len(cache) == 4
        cache.drop([DOC.doc_id])
        assert cache.nbytes == 0 and len(cache) == 0
        assert cache.word_profile(DOC) is not None  # recomputable

    def test_drop_only_named_documents(self):
        cache = ProfileCache()
        cache.word_profile(DOC)
        kept = cache.word_profile(OTHER)
        cache.drop([DOC.doc_id])
        assert cache.word_profile(OTHER) is kept

    def test_clear_keeps_vocabulary(self):
        cache = ProfileCache()
        profile = cache.word_profile(DOC)
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0
        fresh = cache.word_profile(DOC)
        np.testing.assert_array_equal(profile.codes, fresh.codes)
