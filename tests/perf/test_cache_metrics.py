"""CI smoke: the cache actually eliminates restage re-tokenization.

Run directly by the ``bench-smoke`` CI job: a small corpus is linked
with the cache on and off, and the ``tokenizations_total`` /
``profile_cache_hits_total`` counters must prove the cached restage
tokenizes nothing — every raw text walk happened exactly once, during
stage 1.
"""

from repro.core.linker import AliasLinker
from repro.obs.metrics import get_registry


def _value(name):
    return get_registry().snapshot().get(name, {}).get("value", 0)


def test_cached_restage_tokenizes_nothing(reddit_alter_egos):
    linker = AliasLinker(threshold=0.4)
    linker.fit(reddit_alter_egos.originals)
    # Stage 1 of link() warms the unknowns; a warm restage must be
    # pure numpy — zero tokenizer calls, only cache hits.
    linker.link(reddit_alter_egos.alter_egos)
    tokenizations = _value("tokenizations_total")
    hits = _value("profile_cache_hits_total")
    for unknown in reddit_alter_egos.alter_egos[:5]:
        candidates = linker.reducer.reduce([unknown])[0]
        linker.rescore(unknown, candidates.documents)
    assert _value("tokenizations_total") == tokenizations
    assert _value("profile_cache_hits_total") > hits


def test_cache_reduces_tokenizer_calls(reddit_alter_egos):
    def tokenizations_of(**kwargs):
        before = _value("tokenizations_total")
        linker = AliasLinker(threshold=0.4, **kwargs)
        linker.fit(reddit_alter_egos.originals)
        linker.link(reddit_alter_egos.alter_egos)
        return _value("tokenizations_total") - before

    cached = tokenizations_of(cache=True)
    uncached = tokenizations_of(cache=False)
    n_docs = len(reddit_alter_egos.originals) \
        + len(reddit_alter_egos.alter_egos)
    # Cached: exactly one word + one char encode per document.
    assert cached == 2 * n_docs
    # Uncached: every fit/transform re-tokenizes; the restage alone
    # re-encodes each candidate set, so the gap is large.
    assert uncached > 2 * cached
