"""Bit-identity of linking output across every perf configuration.

The perf subsystem's contract is that caching, parallelism, blocked
scoring and the inverted-index stage 1 are pure mechanics: ``link()``
output is **identical** — not approximately equal — whether the cache
is on or off, at any worker count, at any block size, under any stage-1
strategy and shard count, and under checkpoint/resume.  Everything here
compares full ``LinkResult.to_dict()`` payloads for exact equality.
"""

import pytest

from repro.core.batch import BatchedLinker
from repro.core.linker import AliasLinker
from repro.obs.metrics import get_registry
from repro.perf.parallel import GATE_ENV, shutdown_pools


def _run(dataset, **kwargs):
    linker = AliasLinker(threshold=0.4, **kwargs)
    linker.fit(dataset.originals)
    return linker.link(dataset.alter_egos)


@pytest.fixture(scope="module")
def baseline(reddit_alter_egos):
    """The reference run: serial, cached, default block size."""
    return _run(reddit_alter_egos).to_dict()


class TestAliasLinkerEquivalence:
    def test_cache_off_is_bit_identical(self, reddit_alter_egos,
                                        baseline):
        assert _run(reddit_alter_egos,
                    cache=False).to_dict() == baseline

    def test_workers_4_is_bit_identical(self, reddit_alter_egos,
                                        baseline):
        assert _run(reddit_alter_egos,
                    workers=4).to_dict() == baseline

    def test_workers_4_without_cache_is_bit_identical(
            self, reddit_alter_egos, baseline):
        assert _run(reddit_alter_egos, workers=4,
                    cache=False).to_dict() == baseline

    def test_tiny_blocks_are_bit_identical(self, reddit_alter_egos,
                                           baseline):
        assert _run(reddit_alter_egos,
                    block_size=3).to_dict() == baseline

    def test_everything_at_once_is_bit_identical(self,
                                                 reddit_alter_egos,
                                                 baseline):
        assert _run(reddit_alter_egos, workers=4, cache=False,
                    block_size=5).to_dict() == baseline


class TestStage1Equivalence:
    """Every stage-1 strategy produces the same bits end to end."""

    def test_dense_is_bit_identical(self, reddit_alter_egos, baseline):
        assert _run(reddit_alter_egos,
                    stage1="dense").to_dict() == baseline

    @pytest.mark.parametrize("shards", [1, 3, 7])
    def test_invindex_is_bit_identical(self, reddit_alter_egos,
                                       baseline, shards):
        assert _run(reddit_alter_egos, stage1="invindex",
                    shards=shards).to_dict() == baseline

    def test_invindex_with_workers_is_bit_identical(
            self, reddit_alter_egos, baseline):
        assert _run(reddit_alter_egos, stage1="invindex", shards=3,
                    workers=2).to_dict() == baseline

    def test_invindex_everything_at_once(self, reddit_alter_egos,
                                         baseline):
        assert _run(reddit_alter_egos, stage1="invindex", shards=2,
                    workers=4, cache=False,
                    block_size=5).to_dict() == baseline

    def test_rescore_batch_matches_rescore(self, reddit_alter_egos):
        linker = AliasLinker(threshold=0.4)
        linker.fit(reddit_alter_egos.originals)
        reduced = linker.reducer.reduce(reddit_alter_egos.alter_egos)
        pairs = [(c.unknown, c.documents) for c in reduced]
        batched = linker.rescore_batch(pairs)
        for (unknown, docs), scored in zip(pairs, batched):
            assert scored == linker.rescore(unknown, docs)


class TestPersistentPool:
    """The restage pool survives across link() calls and refits."""

    @pytest.fixture(autouse=True)
    def gate_off(self, monkeypatch):
        monkeypatch.setenv(GATE_ENV, "0")
        shutdown_pools()
        yield
        shutdown_pools()

    @staticmethod
    def _counter(name):
        return get_registry().snapshot().get(name, {}).get("value", 0)

    def test_pool_reused_across_links(self, reddit_alter_egos,
                                      baseline):
        linker = AliasLinker(threshold=0.4, workers=2)
        linker.fit(reddit_alter_egos.originals)
        first = linker.link(reddit_alter_egos.alter_egos)
        reuses_before = self._counter("parallel_pool_reuse_total")
        pools_before = self._counter("parallel_pools_total")
        second = linker.link(reddit_alter_egos.alter_egos)
        # Second link forked nothing new: the warm pool served it.
        assert self._counter("parallel_pools_total") == pools_before
        assert self._counter("parallel_pool_reuse_total") \
            > reuses_before
        assert first.to_dict() == baseline
        assert second.to_dict() == baseline

    def test_refit_invalidates_pool(self, reddit_alter_egos):
        linker = AliasLinker(threshold=0.4, workers=2)
        linker.fit(reddit_alter_egos.originals)
        linker.link(reddit_alter_egos.alter_egos)
        pools_before = self._counter("parallel_pools_total")
        # Refit bumps the state version: stale forked images of the
        # old corpus must never serve the new one.
        linker.fit(reddit_alter_egos.originals[:-1])
        linker.link(reddit_alter_egos.alter_egos)
        assert self._counter("parallel_pools_total") > pools_before


class TestResumeEquivalence:
    def test_resumed_parallel_equals_uninterrupted_serial(
            self, reddit_alter_egos, baseline, tmp_path):
        checkpoint = tmp_path / "link.ckpt"
        # Interrupted run: a parallel worker pool finishes only the
        # first few unknowns before the "crash".
        partial = AliasLinker(threshold=0.4, workers=4)
        partial.fit(reddit_alter_egos.originals)
        partial.link(reddit_alter_egos.alter_egos[:3],
                     checkpoint=checkpoint)
        # Resume with a different worker count: same bits.
        resumed = AliasLinker(threshold=0.4, workers=2)
        resumed.fit(reddit_alter_egos.originals)
        result = resumed.link(reddit_alter_egos.alter_egos,
                              checkpoint=checkpoint, resume=True)
        assert result.to_dict() == baseline

    def test_resume_cache_off_equals_baseline(self, reddit_alter_egos,
                                              baseline, tmp_path):
        checkpoint = tmp_path / "link.ckpt"
        first = AliasLinker(threshold=0.4, cache=False)
        first.fit(reddit_alter_egos.originals)
        first.link(reddit_alter_egos.alter_egos[:2],
                   checkpoint=checkpoint)
        second = AliasLinker(threshold=0.4, workers=3)
        second.fit(reddit_alter_egos.originals)
        result = second.link(reddit_alter_egos.alter_egos,
                             checkpoint=checkpoint, resume=True)
        assert result.to_dict() == baseline


class TestBatchedEquivalence:
    @pytest.fixture(scope="class")
    def batched_baseline(self, reddit_alter_egos):
        linker = BatchedLinker(batch_size=12, threshold=0.4)
        linker.fit(reddit_alter_egos.originals)
        return linker.link(reddit_alter_egos.alter_egos).to_dict()

    def test_workers_4_is_bit_identical(self, reddit_alter_egos,
                                        batched_baseline):
        linker = BatchedLinker(batch_size=12, threshold=0.4, workers=4)
        linker.fit(reddit_alter_egos.originals)
        result = linker.link(reddit_alter_egos.alter_egos)
        assert result.to_dict() == batched_baseline

    def test_cache_off_is_bit_identical(self, reddit_alter_egos,
                                        batched_baseline):
        linker = BatchedLinker(batch_size=12, threshold=0.4,
                               cache=False)
        linker.fit(reddit_alter_egos.originals)
        result = linker.link(reddit_alter_egos.alter_egos)
        assert result.to_dict() == batched_baseline
