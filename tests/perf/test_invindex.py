"""Inverted-index stage-1 (repro.perf.invindex): exactness & pruning.

The contract under test is strict: :class:`InvertedIndex` and
:class:`ShardedIndex` are *exact* top-k engines — indices AND values
bit-match ``blocked_top_k`` (itself bit-identical to the dense
one-shot scorer), including the stable tie order, for every corpus,
shard count and k.  Pruning only changes how many postings get
visited, never what comes out.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.core.similarity import cosine_similarity, top_k
from repro.core.tfidf import l2_normalize_rows
from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.perf.blocked import blocked_top_k
from repro.perf.invindex import (
    DEFAULT_SHARDS,
    SHARDS_ENV,
    InvertedIndex,
    ShardedIndex,
    resolve_shards,
)


def _random_matrix(rng, rows, cols, density=0.3):
    dense = rng.random((rows, cols)) * (rng.random((rows, cols)) < density)
    return l2_normalize_rows(sparse.csr_matrix(dense))


def _counter(name):
    return get_registry().snapshot().get(name, {}).get("value", 0)


class TestResolveShards:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert resolve_shards() == DEFAULT_SHARDS

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "8")
        assert resolve_shards() == 8

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "8")
        assert resolve_shards(2) == 2

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_shards()

    @pytest.mark.parametrize("shards", [0, -3])
    def test_non_positive_rejected(self, shards):
        with pytest.raises(ConfigurationError):
            resolve_shards(shards)


class TestInvertedIndexEquivalence:
    @pytest.mark.parametrize("k", [1, 5, 50])
    def test_matches_dense_exactly(self, k):
        rng = np.random.default_rng(k)
        queries = _random_matrix(rng, 9, 40)
        corpus = _random_matrix(rng, 37, 40)
        expected_idx, expected_val = top_k(
            cosine_similarity(queries, corpus), min(k, 37))
        got_idx, got_val = InvertedIndex(corpus).top_k(queries, k)
        np.testing.assert_array_equal(got_idx, expected_idx)
        np.testing.assert_array_equal(got_val, expected_val)

    def test_k_at_least_corpus_returns_everything(self):
        rng = np.random.default_rng(7)
        queries = _random_matrix(rng, 4, 30)
        corpus = _random_matrix(rng, 12, 30)
        idx, val = InvertedIndex(corpus).top_k(queries, 500)
        assert idx.shape == (4, 12)
        eidx, eval_ = top_k(cosine_similarity(queries, corpus), 12)
        np.testing.assert_array_equal(idx, eidx)
        np.testing.assert_array_equal(val, eval_)

    def test_ties_resolve_to_lowest_index(self):
        # Duplicate corpus rows: every duplicate scores identically,
        # so the winner must be the lowest row index (the dense
        # top_k tie rule).
        rng = np.random.default_rng(3)
        base = _random_matrix(rng, 6, 20)
        corpus = sparse.vstack([base, base]).tocsr()
        queries = _random_matrix(rng, 5, 20)
        eidx, eval_ = top_k(cosine_similarity(queries, corpus), 4)
        idx, val = InvertedIndex(corpus).top_k(queries, 4)
        np.testing.assert_array_equal(idx, eidx)
        np.testing.assert_array_equal(val, eval_)

    def test_negative_values_rejected(self):
        dense = np.array([[0.6, -0.8], [1.0, 0.0]])
        with pytest.raises(ConfigurationError):
            InvertedIndex(sparse.csr_matrix(dense))

    def test_invalid_slice_rejected(self):
        rng = np.random.default_rng(0)
        corpus = _random_matrix(rng, 5, 10)
        with pytest.raises(ConfigurationError):
            InvertedIndex(corpus, start=4, end=2)

    def test_k_below_one_rejected(self):
        rng = np.random.default_rng(0)
        corpus = _random_matrix(rng, 5, 10)
        with pytest.raises(ConfigurationError):
            InvertedIndex(corpus).top_k(_random_matrix(rng, 2, 10), 0)

    @pytest.mark.parametrize("ratio", [0.0, 1e9])
    def test_benefit_ratio_extremes_stay_exact(self, ratio,
                                               monkeypatch):
        # The early-exit heuristic trades scan for re-score cost;
        # exactness must hold at both degenerate settings (never
        # exit early / always exit at the first opportunity).
        monkeypatch.setattr(InvertedIndex, "benefit_ratio", ratio)
        rng = np.random.default_rng(int(ratio) % 97)
        queries = _random_matrix(rng, 8, 60)
        corpus = _random_matrix(rng, 50, 60)
        eidx, eval_ = top_k(cosine_similarity(queries, corpus), 10)
        idx, val = InvertedIndex(corpus).top_k(queries, 10)
        np.testing.assert_array_equal(idx, eidx)
        np.testing.assert_array_equal(val, eval_)


class TestInvertedIndexCounters:
    def test_visited_bounded_by_twice_dense(self):
        # On small uniform-random data pruning barely bites and the
        # band re-score may revisit postings the stage scan already
        # touched, so the hard invariant is visited <= 2x dense (each
        # posting is touched at most once per phase).  Sublinearity on
        # realistic corpora is the benchmark suite's claim, not a
        # per-call guarantee.
        rng = np.random.default_rng(42)
        queries = _random_matrix(rng, 10, 80, density=0.2)
        corpus = _random_matrix(rng, 200, 80, density=0.2)
        before_v = _counter("invindex_postings_visited_total")
        before_d = _counter("invindex_postings_dense_total")
        InvertedIndex(corpus).top_k(queries, 5)
        visited = _counter("invindex_postings_visited_total") - before_v
        dense = _counter("invindex_postings_dense_total") - before_d
        assert dense > 0
        assert 0 < visited <= 2 * dense

    def test_skewed_weights_prune(self):
        # Zipf-skewed term weights (the realistic Tf-Idf shape): most
        # of the mass sits in low-bound terms the residual bound lets
        # the scan skip, so visited lands well below the dense count —
        # while output stays exact.
        rng = np.random.default_rng(9)
        n_docs, n_terms = 400, 2000
        skew = 1.0 / (1.0 + np.arange(n_terms)) ** 0.8

        def skewed(rows):
            dense = rng.random((rows, n_terms)) \
                * (rng.random((rows, n_terms)) < 0.25) * skew
            return l2_normalize_rows(sparse.csr_matrix(dense))

        corpus, queries = skewed(n_docs), skewed(6)
        before_v = _counter("invindex_postings_visited_total")
        before_d = _counter("invindex_postings_dense_total")
        idx, val = InvertedIndex(corpus).top_k(queries, 5)
        visited = _counter("invindex_postings_visited_total") - before_v
        dense = _counter("invindex_postings_dense_total") - before_d
        assert 0 < visited < 0.5 * dense
        eidx, eval_ = top_k(cosine_similarity(queries, corpus), 5)
        np.testing.assert_array_equal(idx, eidx)
        np.testing.assert_array_equal(val, eval_)


class TestPostingsRoundTrip:
    def test_prebuilt_postings_bit_identical(self):
        rng = np.random.default_rng(5)
        corpus = _random_matrix(rng, 40, 50)
        queries = _random_matrix(rng, 6, 50)
        built = InvertedIndex(corpus)
        # Read-only views model what an mmap-backed snapshot hands
        # back: the load path must never write to them.
        arrays = []
        for arr in built.postings:
            view = arr.copy()
            view.setflags(write=False)
            arrays.append(view)
        loaded = InvertedIndex(corpus, postings=tuple(arrays))
        eidx, eval_ = built.top_k(queries, 7)
        idx, val = loaded.top_k(queries, 7)
        np.testing.assert_array_equal(idx, eidx)
        np.testing.assert_array_equal(val, eval_)

    def test_sharded_from_postings_bit_identical(self):
        rng = np.random.default_rng(6)
        corpus = _random_matrix(rng, 45, 50)
        queries = _random_matrix(rng, 6, 50)
        built = ShardedIndex(corpus, shards=4)
        postings = [shard.postings for shard in built._shards]
        loaded = ShardedIndex.from_postings(corpus, built.bounds,
                                            postings)
        assert loaded.n_shards == built.n_shards
        eidx, eval_ = built.top_k(queries, 9)
        idx, val = loaded.top_k(queries, 9)
        np.testing.assert_array_equal(idx, eidx)
        np.testing.assert_array_equal(val, eval_)

    def test_bounds_postings_mismatch_rejected(self):
        rng = np.random.default_rng(6)
        corpus = _random_matrix(rng, 20, 30)
        built = ShardedIndex(corpus, shards=2)
        postings = [shard.postings for shard in built._shards]
        with pytest.raises(ConfigurationError):
            ShardedIndex.from_postings(corpus, built.bounds,
                                       postings[:1])


class TestShardedIndexEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 50])
    @pytest.mark.parametrize("k", [1, 5, 50])
    def test_matches_blocked_exactly(self, shards, k):
        rng = np.random.default_rng(shards * 100 + k)
        queries = _random_matrix(rng, 9, 40)
        corpus = _random_matrix(rng, 37, 40)
        expected_idx, expected_val = blocked_top_k(queries, corpus, k)
        got_idx, got_val = ShardedIndex(corpus, shards=shards).top_k(
            queries, k)
        np.testing.assert_array_equal(got_idx, expected_idx)
        np.testing.assert_array_equal(got_val, expected_val)

    def test_shards_clamped_to_corpus(self):
        rng = np.random.default_rng(1)
        corpus = _random_matrix(rng, 3, 10)
        assert ShardedIndex(corpus, shards=16).n_shards == 3

    def test_empty_corpus_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedIndex(sparse.csr_matrix((0, 10)))

    def test_k_below_one_rejected(self):
        rng = np.random.default_rng(1)
        corpus = _random_matrix(rng, 5, 10)
        with pytest.raises(ConfigurationError):
            ShardedIndex(corpus).top_k(_random_matrix(rng, 2, 10), 0)


class TestShardedIndexProperties:
    """Hypothesis sweep: exactness over random sparse corpora."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           n_docs=st.integers(1, 60),
           n_queries=st.integers(1, 8),
           n_terms=st.integers(2, 50),
           density=st.floats(0.05, 0.9),
           shards=st.integers(1, 12),
           k=st.integers(1, 80))
    def test_bit_matches_blocked(self, seed, n_docs, n_queries,
                                 n_terms, density, shards, k):
        rng = np.random.default_rng(seed)
        corpus = _random_matrix(rng, n_docs, n_terms, density)
        queries = _random_matrix(rng, n_queries, n_terms, density)
        expected_idx, expected_val = blocked_top_k(queries, corpus, k)
        index = ShardedIndex(corpus, shards=shards)
        got_idx, got_val = index.top_k(queries, k)
        np.testing.assert_array_equal(got_idx, expected_idx)
        np.testing.assert_array_equal(got_val, expected_val)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           n_docs=st.integers(2, 40),
           shards=st.integers(1, 6),
           k=st.integers(1, 12))
    def test_postings_round_trip_bit_identical(self, seed, n_docs,
                                               shards, k):
        rng = np.random.default_rng(seed)
        corpus = _random_matrix(rng, n_docs, 30, 0.4)
        queries = _random_matrix(rng, 3, 30, 0.4)
        built = ShardedIndex(corpus, shards=shards)
        loaded = ShardedIndex.from_postings(
            corpus, built.bounds,
            [shard.postings for shard in built._shards])
        eidx, eval_ = built.top_k(queries, k)
        idx, val = loaded.top_k(queries, k)
        np.testing.assert_array_equal(idx, eidx)
        np.testing.assert_array_equal(val, eval_)
