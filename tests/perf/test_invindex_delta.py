"""Delta segments, parallel builds, the memory diet and stage1=auto.

The million-alias additions to :mod:`repro.perf.invindex` keep the
module's original contract — exact top-k, bit-identical to the dense
scorer — while changing how the index is *built* and *grown*:

* appends land in a delta segment and are scored exactly, so any
  interleaving of extend / query / compact matches a fresh full
  rebuild bit for bit (property-tested below);
* the parallel shard build is a pure reordering of the same work and
  must produce byte-identical posting arrays;
* the float32/int32 memory diet halves the posting bytes without
  changing a single output bit (bounds stay float64, scores are
  re-derived exactly);
* :func:`choose_stage1` turns the measured corpus shape into a
  dense/blocked/invindex pick.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.core.similarity import cosine_similarity, top_k
from repro.core.tfidf import l2_normalize_rows
from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.perf.invindex import (
    AUTO_DENSE_MAX_DOCS,
    AUTO_INVINDEX_MIN_DOCS,
    InvertedIndex,
    ShardedIndex,
    choose_stage1,
)
from repro.perf.parallel import GATE_ENV, shutdown_pools


def _random_matrix(rng, rows, cols, density=0.3):
    dense = rng.random((rows, cols)) * (rng.random((rows, cols)) < density)
    return l2_normalize_rows(sparse.csr_matrix(dense))


def _counter(name):
    return get_registry().snapshot().get(name, {}).get("value", 0)


def _expected(queries, corpus, k):
    return top_k(cosine_similarity(queries, corpus),
                 min(k, corpus.shape[0]))


class TestDeltaSegment:
    def test_extend_matches_fresh_build(self):
        rng = np.random.default_rng(0)
        full = _random_matrix(rng, 60, 40)
        queries = _random_matrix(rng, 7, 40)
        index = InvertedIndex(full[:50])
        index.extend(full, 60)
        assert index.n_delta == 10
        assert index.n_main == 50 and index.n_docs == 60
        exp_idx, exp_val = _expected(queries, full, 5)
        got_idx, got_val = index.top_k(queries, 5)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)

    def test_repeated_appends_then_compact(self):
        rng = np.random.default_rng(1)
        full = _random_matrix(rng, 80, 30)
        queries = _random_matrix(rng, 5, 30)
        index = InvertedIndex(full[:72])
        for end in (74, 76, 78, 80):
            index.extend(full, end)
        exp_idx, exp_val = _expected(queries, full, 6)
        got_idx, got_val = index.top_k(queries, 6)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)
        index.compact()
        assert index.n_delta == 0
        got_idx, got_val = index.top_k(queries, 6)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)

    def test_auto_compaction_at_delta_ratio(self):
        rng = np.random.default_rng(2)
        full = _random_matrix(rng, 100, 30)
        index = InvertedIndex(full[:40])
        # 10 delta rows on 40 main (25%) stays within the ratio ...
        index.extend(full, 50)
        assert index.n_delta == 10
        # ... and one more append crosses it, folding everything in.
        index.extend(full, 51)
        assert index.n_delta == 0
        assert index.n_main == 51

    def test_k_larger_than_main_segment(self):
        rng = np.random.default_rng(3)
        full = _random_matrix(rng, 8, 25)
        queries = _random_matrix(rng, 4, 25)
        index = InvertedIndex(full[:6])
        index.extend(full, 8)
        exp_idx, exp_val = _expected(queries, full, 20)
        got_idx, got_val = index.top_k(queries, 20)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)

    def test_extend_cannot_shrink(self):
        rng = np.random.default_rng(4)
        matrix = _random_matrix(rng, 20, 15)
        index = InvertedIndex(matrix)
        with pytest.raises(ConfigurationError):
            index.extend(matrix, 10)

    def test_extend_rejects_term_mismatch(self):
        rng = np.random.default_rng(5)
        index = InvertedIndex(_random_matrix(rng, 20, 15))
        with pytest.raises(ConfigurationError):
            index.extend(_random_matrix(rng, 25, 16), 25)

    def test_compact_without_delta_is_noop(self):
        rng = np.random.default_rng(6)
        matrix = _random_matrix(rng, 20, 15)
        index = InvertedIndex(matrix)
        postings_before = index.postings
        index.compact()
        for before, after in zip(postings_before, index.postings):
            np.testing.assert_array_equal(before, after)

    def test_sharded_extend_grows_last_shard_only(self):
        rng = np.random.default_rng(7)
        full = _random_matrix(rng, 90, 30)
        queries = _random_matrix(rng, 6, 30)
        index = ShardedIndex(full[:84], shards=3)
        main_ends_before = index.main_ends
        index.extend(full)
        assert index.n_docs == 90
        assert index.bounds[-1] == 90
        assert index.main_ends == main_ends_before
        assert index.n_delta == 6
        exp_idx, exp_val = _expected(queries, full, 5)
        got_idx, got_val = index.top_k(queries, 5)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)

    def test_sharded_round_trip_preserves_delta(self):
        rng = np.random.default_rng(8)
        full = _random_matrix(rng, 90, 30)
        queries = _random_matrix(rng, 6, 30)
        index = ShardedIndex(full[:84], shards=3)
        index.extend(full)
        postings = [shard.postings for shard in index._shards]
        restored = ShardedIndex.from_postings(
            full, index.bounds, postings, main_ends=index.main_ends)
        assert restored.n_delta == index.n_delta
        exp_idx, exp_val = index.top_k(queries, 5)
        got_idx, got_val = restored.top_k(queries, 5)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)

    def test_from_postings_validates_main_ends(self):
        rng = np.random.default_rng(9)
        matrix = _random_matrix(rng, 30, 20)
        index = ShardedIndex(matrix, shards=2)
        postings = [shard.postings for shard in index._shards]
        with pytest.raises(ConfigurationError):
            ShardedIndex.from_postings(matrix, index.bounds, postings,
                                       main_ends=[15])


class TestIncrementalInterleavings:
    """Any interleaving of extend / query / compact is bit-identical
    to a fresh full rebuild, across shard counts and the exact flag.
    """

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        shards=st.integers(1, 4),
        exact=st.booleans(),
        # Each step appends 0-6 rows (0 = query-only step) and then
        # decides whether to force a compaction.
        steps=st.lists(
            st.tuples(st.integers(0, 6), st.booleans()),
            min_size=1, max_size=5),
    )
    def test_interleaving_matches_full_rebuild(self, seed, shards,
                                               exact, steps):
        rng = np.random.default_rng(seed)
        base_rows = int(rng.integers(8, 30))
        total = base_rows + sum(n for n, _ in steps)
        full = _random_matrix(rng, total, 25, density=0.4)
        queries = _random_matrix(rng, 4, 25, density=0.4)
        k = int(rng.integers(1, 12))

        grown = ShardedIndex(full[:base_rows],
                             shards=min(shards, base_rows),
                             exact=exact)
        end = base_rows
        for n_add, do_compact in steps:
            if n_add:
                end += n_add
                grown.extend(full[:end])
            if do_compact:
                grown.compact()
            fresh = ShardedIndex(full[:end],
                                 shards=min(shards, base_rows))
            exp_idx, exp_val = fresh.top_k(queries, k)
            got_idx, got_val = grown.top_k(queries, k)
            np.testing.assert_array_equal(got_idx, exp_idx)
            np.testing.assert_array_equal(got_val, exp_val)


class TestParallelBuild:
    def test_parallel_build_bit_identical(self, monkeypatch):
        monkeypatch.setenv(GATE_ENV, "off")
        rng = np.random.default_rng(11)
        matrix = _random_matrix(rng, 60, 40)
        queries = _random_matrix(rng, 6, 40)
        serial = ShardedIndex(matrix, shards=3)
        try:
            parallel = ShardedIndex(matrix, shards=3, jobs=2)
        finally:
            shutdown_pools()
        assert parallel.n_shards == serial.n_shards
        for ser, par in zip(serial._shards, parallel._shards):
            for a, b in zip(ser.postings, par.postings):
                np.testing.assert_array_equal(a, b)
        exp_idx, exp_val = serial.top_k(queries, 5)
        got_idx, got_val = parallel.top_k(queries, 5)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)

    def test_parallel_build_respects_exact_flag(self, monkeypatch):
        monkeypatch.setenv(GATE_ENV, "off")
        rng = np.random.default_rng(12)
        matrix = _random_matrix(rng, 40, 30)
        try:
            index = ShardedIndex(matrix, shards=2, jobs=2, exact=False)
        finally:
            shutdown_pools()
        for shard in index._shards:
            assert shard._data.dtype == np.float32

    def test_gated_host_builds_serially(self, monkeypatch):
        # With the gate on and jobs far above the core count, the
        # build must take the serial branch — same index, no pool.
        monkeypatch.setenv(GATE_ENV, "1")
        rng = np.random.default_rng(13)
        matrix = _random_matrix(rng, 40, 30)
        pools_before = _counter("parallel_pools_total")
        index = ShardedIndex(matrix, shards=2, jobs=512)
        assert _counter("parallel_pools_total") == pools_before
        serial = ShardedIndex(matrix, shards=2)
        for ser, par in zip(serial._shards, index._shards):
            for a, b in zip(ser.postings, par.postings):
                np.testing.assert_array_equal(a, b)


class TestMemoryDiet:
    def test_float32_outputs_bit_identical(self):
        rng = np.random.default_rng(20)
        matrix = _random_matrix(rng, 80, 50)
        queries = _random_matrix(rng, 9, 50)
        for k in (1, 5, 40):
            exp_idx, exp_val = _expected(queries, matrix, k)
            got_idx, got_val = InvertedIndex(
                matrix, exact=False).top_k(queries, k)
            np.testing.assert_array_equal(got_idx, exp_idx)
            np.testing.assert_array_equal(got_val, exp_val)

    def test_float32_halves_posting_bytes(self):
        rng = np.random.default_rng(21)
        matrix = _random_matrix(rng, 80, 50)
        fat = InvertedIndex(matrix)
        slim = InvertedIndex(matrix, exact=False)
        assert slim._data.dtype == np.float32
        assert slim._rows.dtype == np.int32
        assert slim._data.nbytes == fat._data.nbytes // 2
        # The pruning bounds stay float64 (computed pre-downcast).
        assert fat._maxw.dtype == np.float64
        assert slim._maxw.dtype == np.float64

    def test_round_trip_redetects_dtype(self):
        rng = np.random.default_rng(22)
        matrix = _random_matrix(rng, 60, 40)
        queries = _random_matrix(rng, 5, 40)
        slim = ShardedIndex(matrix, shards=2, exact=False)
        postings = [shard.postings for shard in slim._shards]
        restored = ShardedIndex.from_postings(matrix, slim.bounds,
                                              postings)
        assert restored._exact is False
        for shard in restored._shards:
            assert shard._data.dtype == np.float32
        exp_idx, exp_val = _expected(queries, matrix, 7)
        got_idx, got_val = restored.top_k(queries, 7)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)

    def test_delta_extend_keeps_diet(self):
        rng = np.random.default_rng(23)
        full = _random_matrix(rng, 70, 40)
        queries = _random_matrix(rng, 5, 40)
        index = InvertedIndex(full[:64], exact=False)
        index.extend(full, 70)
        exp_idx, exp_val = _expected(queries, full, 6)
        got_idx, got_val = index.top_k(queries, 6)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)
        index.compact()
        assert index._data.dtype == np.float32
        got_idx, got_val = index.top_k(queries, 6)
        np.testing.assert_array_equal(got_idx, exp_idx)
        np.testing.assert_array_equal(got_val, exp_val)


class TestChooseStage1:
    def test_small_corpus_dense(self):
        rng = np.random.default_rng(30)
        matrix = _random_matrix(rng, 50, 40)
        assert choose_stage1(matrix) == "dense"
        assert choose_stage1(
            _random_matrix(rng, AUTO_DENSE_MAX_DOCS, 40)) == "dense"

    def test_mid_corpus_blocked(self):
        rng = np.random.default_rng(31)
        matrix = _random_matrix(rng, AUTO_DENSE_MAX_DOCS + 1, 40)
        assert choose_stage1(matrix) == "blocked"

    def test_empty_matrix_blocked(self):
        matrix = sparse.csr_matrix(
            (AUTO_INVINDEX_MIN_DOCS + 1, 100), dtype=np.float64)
        assert choose_stage1(matrix) == "blocked"

    def test_huge_k_blocked(self):
        n = AUTO_INVINDEX_MIN_DOCS + 1
        rng = np.random.default_rng(32)
        matrix = _random_matrix(rng, n, 60)
        assert choose_stage1(matrix, k=n // 2) == "blocked"

    def test_skewed_large_corpus_invindex(self):
        # Zipf-weighted vocabulary: the impact-ordered prefix carrying
        # half the cap mass spans few postings — prunable, the regime
        # the inverted index was built for.
        rng = np.random.default_rng(33)
        n, n_terms, per_doc = AUTO_INVINDEX_MIN_DOCS + 1, 5000, 40
        cols = (rng.zipf(1.3, size=n * per_doc) - 1) % n_terms
        rows = np.repeat(np.arange(n), per_doc)
        counts = sparse.coo_matrix(
            (np.ones(n * per_doc), (rows, cols)),
            shape=(n, n_terms)).tocsr()
        counts.sum_duplicates()
        df = np.asarray((counts > 0).sum(axis=0)).ravel() + 1.0
        idf = np.log((n + 1.0) / df)
        tf = counts.copy()
        tf.data = 1.0 + np.log(tf.data)
        matrix = l2_normalize_rows(tf.multiply(idf).tocsr())
        assert choose_stage1(matrix, k=10) == "invindex"

    def test_flat_weights_blocked(self):
        # Every term equally heavy and equally long: no impact-order
        # prefix is small, pruning cannot win, stay blocked.
        n = AUTO_INVINDEX_MIN_DOCS + 64
        n_terms = 64
        rows = np.arange(n * 8) // 8
        cols = (np.arange(n * 8) * 7) % n_terms
        matrix = l2_normalize_rows(sparse.csr_matrix(
            (np.ones(n * 8), (rows, cols)), shape=(n, n_terms)))
        assert choose_stage1(matrix, k=10) == "blocked"
