"""Unit tests for the parallel executor (repro.perf.parallel)."""

import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import counter, get_registry
from repro.obs.spans import (
    disable_tracing,
    enable_tracing,
    get_trace,
    iter_spans,
    reset_trace,
    span,
)
from repro.perf import parallel
from repro.perf.parallel import GATE_ENV, WORKERS_ENV, \
    ParallelExecutor, available_cores, resolve_workers, shutdown_pools


def _shared_affine(state, item):
    """Module-level task for map_shared (workers unpickle by name)."""
    return state["scale"] * item + state["offset"]


def _shared_probe(state, item):
    counter("test_map_shared_probe_total").inc()
    return state["offset"] + item


def _shared_boom(state, item):
    raise ValueError(f"bad item {item}")


@pytest.fixture(autouse=True)
def _gate_off(monkeypatch):
    """Disable the available-core gate: these tests assert actual
    forking behavior and must not silently go serial on a 1-core CI
    box."""
    monkeypatch.setenv(GATE_ENV, "0")


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "  ")
        assert resolve_workers() == 1

    def test_non_integer_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_workers()

    @pytest.mark.parametrize("workers", [0, -1])
    def test_non_positive_rejected(self, workers):
        with pytest.raises(ConfigurationError):
            resolve_workers(workers)


class TestMap:
    def test_serial_preserves_order(self):
        result = ParallelExecutor(workers=1).map(lambda x: x * x,
                                                 range(10))
        assert result == [x * x for x in range(10)]

    def test_parallel_preserves_order(self):
        result = ParallelExecutor(workers=3).map(lambda x: x * x,
                                                 range(20))
        assert result == [x * x for x in range(20)]

    def test_single_item_stays_serial(self):
        pools = get_registry().snapshot().get(
            "parallel_pools_total", {}).get("value", 0)
        assert ParallelExecutor(workers=4).map(str, [1]) == ["1"]
        after = get_registry().snapshot().get(
            "parallel_pools_total", {}).get("value", 0)
        assert after == pools

    def test_serial_exception_propagates(self):
        def boom(_):
            raise ValueError("bad item")

        with pytest.raises(ValueError):
            ParallelExecutor(workers=1).map(boom, [1, 2])

    def test_closure_state_inherited_by_fork(self):
        offset = 41
        result = ParallelExecutor(workers=2).map(
            lambda x: x + offset, [1, 2, 3, 4])
        assert result == [42, 43, 44, 45]

    def test_nested_executor_stays_serial(self):
        def outer(x):
            inner = ParallelExecutor(workers=4).map(
                lambda y: y + 1, [x, x * 10])
            return sum(inner)

        result = ParallelExecutor(workers=2).map(outer, [1, 2, 3, 4])
        assert result == [13, 24, 35, 46]


class TestMapShared:
    """map_shared: the persistent-pool path keyed on (state, version)."""

    @pytest.fixture(autouse=True)
    def fresh_pools(self):
        shutdown_pools()
        yield
        shutdown_pools()

    @staticmethod
    def _pools():
        return get_registry().snapshot().get(
            "parallel_pools_total", {}).get("value", 0)

    @staticmethod
    def _reuses():
        return get_registry().snapshot().get(
            "parallel_pool_reuse_total", {}).get("value", 0)

    def test_serial_preserves_order(self):
        state = {"scale": 3, "offset": 1}
        result = ParallelExecutor(workers=1).map_shared(
            _shared_affine, range(10), state=state)
        assert result == [3 * x + 1 for x in range(10)]

    def test_parallel_preserves_order(self):
        state = {"scale": 2, "offset": 5}
        result = ParallelExecutor(workers=3).map_shared(
            _shared_affine, range(20), state=state)
        assert result == [2 * x + 5 for x in range(20)]

    def test_pool_reused_across_calls(self):
        state = {"scale": 1, "offset": 0}
        executor = ParallelExecutor(workers=2)
        pools_before = self._pools()
        reuses_before = self._reuses()
        first = executor.map_shared(_shared_affine, range(8),
                                    state=state)
        second = executor.map_shared(_shared_affine, range(8, 16),
                                     state=state)
        assert first == list(range(8))
        assert second == list(range(8, 16))
        # One fork serves both calls; the second is a recorded reuse.
        assert self._pools() == pools_before + 1
        assert self._reuses() == reuses_before + 1

    def test_version_bump_invalidates_pool(self):
        state = {"scale": 1, "offset": 0}
        executor = ParallelExecutor(workers=2)
        pools_before = self._pools()
        executor.map_shared(_shared_affine, range(6), state=state,
                            version=0)
        executor.map_shared(_shared_affine, range(6), state=state,
                            version=1)
        # A stale forked memory image must never serve a new version.
        assert self._pools() == pools_before + 2

    def test_different_state_invalidates_pool(self):
        executor = ParallelExecutor(workers=2)
        pools_before = self._pools()
        executor.map_shared(_shared_affine, range(6),
                            state={"scale": 1, "offset": 0})
        executor.map_shared(_shared_affine, range(6),
                            state={"scale": 1, "offset": 9})
        assert self._pools() == pools_before + 2

    def test_gated_serial_same_results(self, monkeypatch):
        monkeypatch.delenv(GATE_ENV, raising=False)
        monkeypatch.setattr(parallel, "available_cores", lambda: 1)
        pools_before = self._pools()
        result = ParallelExecutor(workers=4).map_shared(
            _shared_affine, range(8), state={"scale": 4, "offset": 2})
        assert result == [4 * x + 2 for x in range(8)]
        assert self._pools() == pools_before

    def test_single_item_stays_serial(self):
        pools_before = self._pools()
        result = ParallelExecutor(workers=4).map_shared(
            _shared_affine, [3], state={"scale": 2, "offset": 0})
        assert result == [6]
        assert self._pools() == pools_before

    def test_counters_merged_from_workers(self):
        probe = counter("test_map_shared_probe_total")
        before = probe.value
        ParallelExecutor(workers=2).map_shared(
            _shared_probe, range(8), state={"offset": 0})
        assert probe.value == before + 8

    def test_worker_exception_propagates_and_pool_resets(self):
        executor = ParallelExecutor(workers=2)
        with pytest.raises(ValueError):
            executor.map_shared(_shared_boom, range(4), state={})
        # The pool was torn down: the next call forks a fresh one and
        # still works.
        result = executor.map_shared(
            _shared_affine, range(4), state={"scale": 1, "offset": 0})
        assert result == list(range(4))


class TestWorkerMetrics:
    def test_counters_merged_from_workers(self):
        probe = counter("test_parallel_probe_total")

        def task(x):
            counter("test_parallel_probe_total").inc()
            return x

        before = probe.value
        ParallelExecutor(workers=3).map(task, range(8))
        assert probe.value == before + 8

    def test_gauges_not_clobbered_by_workers(self):
        from repro.obs.metrics import gauge

        probe = gauge("test_parallel_probe_gauge")
        probe.set(7)

        def task(x):
            gauge("test_parallel_probe_gauge").set(x)
            return x

        ParallelExecutor(workers=2).map(task, range(4))
        assert probe.value == 7

    def test_overhead_counters_recorded(self):
        def snap():
            metrics = get_registry().snapshot()
            return {name: metrics.get(name, {}).get("value", 0.0)
                    for name in ("parallel.pickle_bytes",
                                 "parallel.fork_ms",
                                 "parallel.merge_ms")}

        before = snap()
        ParallelExecutor(workers=2).map(lambda x: x * x, range(8))
        after = snap()
        # Every parallel map pays fork + merge and ships results over
        # a pipe; the counters must account all three.
        assert after["parallel.pickle_bytes"] \
            > before["parallel.pickle_bytes"]
        assert after["parallel.fork_ms"] > before["parallel.fork_ms"]
        assert after["parallel.merge_ms"] > before["parallel.merge_ms"]

    def test_serial_map_pays_no_overhead(self):
        fork_before = get_registry().snapshot().get(
            "parallel.fork_ms", {}).get("value", 0.0)
        ParallelExecutor(workers=1).map(lambda x: x, range(8))
        fork_after = get_registry().snapshot().get(
            "parallel.fork_ms", {}).get("value", 0.0)
        assert fork_after == fork_before


class TestWorkerSpans:
    @pytest.fixture(autouse=True)
    def clean_tracer(self):
        reset_trace()
        yield
        disable_tracing()
        reset_trace()

    def test_worker_spans_graft_into_parent_trace(self):
        def task(x):
            with span("test.worker_restage", item=x):
                time.sleep(0.002)
            return x

        enable_tracing()
        with span("test.parent"):
            ParallelExecutor(workers=2).map(task, range(12))
        nodes = [n for root in get_trace()["spans"]
                 for n in iter_spans(root)]
        worker_spans = [n for n in nodes
                        if n["name"] == "test.worker_restage"]
        assert len(worker_spans) == 12
        pids = {n["pid"] for n in worker_spans}
        # Spans ran in forked workers and kept their pids — that is
        # what gives each worker its own Chrome-trace lane.
        assert os.getpid() not in pids
        for node in worker_spans:
            assert node["wall_ms"] > 0
            assert node["attributes"]["item"] in range(12)

    def test_worker_spans_nest_under_the_calling_span(self):
        def task(x):
            with span("test.nested_task"):
                pass
            return x

        enable_tracing()
        with span("test.outer"):
            ParallelExecutor(workers=2).map(task, range(4))
        (root,) = get_trace()["spans"]
        assert root["name"] == "test.outer"
        names = {n["name"] for n in iter_spans(root)}
        assert "test.nested_task" in names

    def test_no_span_shipping_when_tracing_disabled(self):
        def task(x):
            with span("test.invisible"):
                pass
            return x

        ParallelExecutor(workers=2).map(task, range(4))
        assert get_trace()["spans"] == []


class TestCoreGating:
    def test_available_cores_positive(self):
        assert available_cores() >= 1

    def test_oversubscribed_map_gates_serial(self, monkeypatch):
        monkeypatch.delenv(GATE_ENV, raising=False)
        monkeypatch.setattr(parallel, "available_cores", lambda: 1)
        pools_before = get_registry().snapshot().get(
            "parallel_pools_total", {}).get("value", 0.0)
        gated_before = get_registry().snapshot().get(
            "parallel_gated_serial_total", {}).get("value", 0.0)
        result = ParallelExecutor(workers=4).map(lambda x: x * x,
                                                 range(8))
        metrics = get_registry().snapshot()
        # Same results, no pool forked, and the fallback is counted.
        assert result == [x * x for x in range(8)]
        assert metrics["parallel_pools_total"]["value"] == pools_before
        assert metrics["parallel_gated_serial_total"]["value"] \
            == gated_before + 1

    def test_workers_within_cores_not_gated(self, monkeypatch):
        monkeypatch.delenv(GATE_ENV, raising=False)
        monkeypatch.setattr(parallel, "available_cores", lambda: 8)
        pools_before = get_registry().snapshot().get(
            "parallel_pools_total", {}).get("value", 0.0)
        result = ParallelExecutor(workers=2).map(lambda x: x + 1,
                                                 range(6))
        assert result == [x + 1 for x in range(6)]
        assert get_registry().snapshot()["parallel_pools_total"][
            "value"] == pools_before + 1

    def test_gate_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv(GATE_ENV, "0")
        monkeypatch.setattr(parallel, "available_cores", lambda: 1)
        pools_before = get_registry().snapshot().get(
            "parallel_pools_total", {}).get("value", 0.0)
        ParallelExecutor(workers=2).map(lambda x: x, range(4))
        assert get_registry().snapshot()["parallel_pools_total"][
            "value"] == pools_before + 1
