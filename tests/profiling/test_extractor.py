"""Tests for personal-information extraction (repro.profiling.extractor)."""

import pytest

from repro.forums.models import Message, UserRecord
from repro.profiling import extractor as ex


def _record(*texts, alias="johndoe"):
    record = UserRecord(alias=alias, forum="reddit")
    for i, text in enumerate(texts):
        record.add(Message(message_id=f"m{i}", author=alias, text=text,
                           timestamp=1_500_000_000 + i, forum="reddit",
                           section="r/test"))
    return record


@pytest.fixture
def profiler():
    return ex.ProfileExtractor()


class TestRules:
    def test_age_extracted(self, profiler):
        profile = profiler.extract(_record(
            "I am 27 years old and honestly it shows some days."))
        assert profile.age == "27"

    def test_age_ignores_unrealistic(self, profiler):
        profile = profiler.extract(_record("I am 7 years old"))
        assert profile.age is None

    def test_city_extracted(self, profiler):
        profile = profiler.extract(_record(
            "I live in Edmonton and the scene here is pretty small."))
        assert profile.city == "Edmonton"

    def test_two_word_city(self, profiler):
        profile = profiler.extract(_record(
            "Greetings from New York, the weather is terrible."))
        assert profile.city == "New York"

    def test_occupation_extracted(self, profiler):
        profile = profiler.extract(_record(
            "I work as a line cook so my schedule is all over."))
        assert profile.occupation == "line cook"

    def test_phone_extracted(self, profiler):
        profile = profiler.extract(_record(
            "Typing this from my Samsung Galaxy S4 so excuse typos."))
        assert profile.phone == "Samsung Galaxy S4"

    def test_game_extracted(self, profiler):
        profile = profiler.extract(_record(
            "Mostly playing Fallout these nights instead of sleeping."))
        assert "Fallout" in profile.games

    def test_hobby_extracted(self, profiler):
        profile = profiler.extract(_record(
            "Been really into yoga lately, it keeps me sane."))
        assert "yoga" in profile.hobbies

    def test_travel_extracted(self, profiler):
        profile = profiler.extract(_record(
            "Next week I am flying to New York for the third time."))
        assert "New York" in profile.travels

    def test_religion_extracted(self, profiler):
        profile = profiler.extract(_record(
            "I was raised Christian and it still shapes how I think."))
        assert profile.best(ex.RELIGION) == "Christian"

    def test_vendor_complaint_extracted(self, profiler):
        profile = profiler.extract(_record(
            "Really disappointed, GreenValley sold me poor quality "
            "white molly and refused any kind of refund."))
        assert profile.best(ex.VENDOR) == "GreenValley"
        assert profile.best(ex.DRUG) == "white molly"


class TestAggregation:
    def test_most_evidenced_value_wins(self, profiler):
        profile = profiler.extract(_record(
            "I am 27 years old and tired.",
            "As a 27 year old I have seen this before.",
            "I am 34 years old actually no wait.",
        ))
        assert profile.age == "27"

    def test_evidence_snippets_recorded(self, profiler):
        profile = profiler.extract(_record(
            "I live in Edmonton and the scene here is small."))
        facts = profile.evidence_for(ex.CITY, "Edmonton")
        assert len(facts) == 1
        assert facts[0].message_id == "m0"
        assert "Edmonton" in facts[0].snippet

    def test_completeness_zero_without_facts(self, profiler):
        profile = profiler.extract(_record("nothing personal here"))
        assert profile.completeness() == 0.0

    def test_completeness_grows(self, profiler):
        profile = profiler.extract(_record(
            "I am 27 years old and I live in Edmonton today."))
        assert profile.completeness() > 0.0

    def test_john_doe_scenario(self, profiler):
        """The paper's §V-D showcase: age, city, phone, games,
        travel — all recoverable from casual posts."""
        profile = profiler.extract(_record(
            "I am 27 years old and live with my parents.",
            "I live in Edmonton and honestly the scene is small.",
            "Typing this from my Samsung Galaxy S4 so excuse typos.",
            "Mostly playing Fallout these nights instead of sleeping.",
            "Add me on Counter Strike if you want to squad up.",
            "Next month I am flying to New York again for work.",
        ))
        assert profile.age == "27"
        assert profile.city == "Edmonton"
        assert profile.phone == "Samsung Galaxy S4"
        assert set(profile.games) >= {"Fallout", "Counter Strike"}
        assert "New York" in profile.travels


class TestWorldIntegration:
    def test_disclosing_persona_profiled(self, world):
        """Synthetic disclosure sentences must be extractable."""
        profiler = ex.ProfileExtractor()
        best = None
        for record in world.forums["reddit"].users.values():
            profile = profiler.extract(record)
            if best is None or len(profile.facts) > len(best.facts):
                best = profile
        assert best is not None
        assert len(best.facts) > 0
