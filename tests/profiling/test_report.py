"""Tests for profile report rendering (repro.profiling.report)."""

from repro.forums.models import Message, UserRecord
from repro.profiling.extractor import ProfileExtractor, UserProfile
from repro.profiling.report import render_report, summary_line


def _profile(*texts, alias="johndoe"):
    record = UserRecord(alias=alias, forum="reddit")
    for i, text in enumerate(texts):
        record.add(Message(message_id=f"m{i}", author=alias,
                           text=text, timestamp=1_500_000_000 + i,
                           forum="reddit", section="r/x"))
    return ProfileExtractor().extract(record)


JOHN = (
    "I am 27 years old and live with my parents.",
    "I live in Edmonton and honestly the scene is small.",
    "Typing this from my Samsung Galaxy S4 so excuse the typos.",
    "Mostly playing Fallout these nights instead of sleeping.",
)


class TestSummaryLine:
    def test_rich_profile_summary(self):
        line = summary_line(_profile(*JOHN))
        assert "27 year old" in line
        assert "Edmonton" in line
        assert "Samsung Galaxy S4" in line

    def test_empty_profile_summary(self):
        line = summary_line(_profile("nothing personal at all here"))
        assert "no personal facts" in line


class TestRenderReport:
    def test_sections_present(self):
        report = render_report(_profile(*JOHN))
        assert "PROFILE: johndoe" in report
        assert "Age: 27" in report
        assert "Location: Edmonton" in report
        assert "Video games: Fallout" in report

    def test_evidence_cited(self):
        report = render_report(_profile(*JOHN))
        assert "[m0]" in report  # message ids quoted as evidence

    def test_dark_alias_named_when_linked(self):
        report = render_report(_profile(*JOHN), dark_alias="darkwolf99")
        assert "LINKED DARK ALIAS: darkwolf99" in report

    def test_no_dark_alias_line_by_default(self):
        report = render_report(_profile(*JOHN))
        assert "LINKED DARK ALIAS" not in report

    def test_empty_profile_renders(self):
        report = render_report(_profile("nothing personal here"))
        assert "Profile completeness: 0%" in report

    def test_completeness_line(self):
        report = render_report(_profile(*JOHN))
        assert "Profile completeness:" in report
        assert "facts extracted" in report
