"""Chaos tests: the pipeline under deterministic fault injection.

The acceptance criterion: a :class:`LinkingPipeline` run with transient
faults injected at a 30% rate completes and produces matches identical
to a fault-free run (stages are pure, so stage-level retries are
exact).
"""

import pytest

from repro.config import PipelineConfig
from repro.errors import ConfigurationError, RetryExhaustedError
from repro.pipeline import LinkingPipeline
from repro.resilience.faults import FaultPlan, install_fault_plan
from repro.resilience.policy import RetryPolicy


@pytest.fixture
def chaos_30():
    """Install a 30%-transient-rate plan; always restore the previous."""
    plan = FaultPlan(seed=2026, transient_rate=0.3)
    previous = install_fault_plan(plan)
    yield plan
    install_fault_plan(previous)


def _pipeline():
    return LinkingPipeline(
        PipelineConfig(words_per_alias=600, threshold=0.0))


class TestChaosPipeline:
    def test_forum_run_matches_fault_free(self, world, chaos_30):
        known = world.forums["dm"]
        unknown = world.forums["tmg"]

        install_fault_plan(None)
        clean = _pipeline().link_forums(known, unknown)

        install_fault_plan(chaos_30)
        chaotic = _pipeline().link_forums(known, unknown)

        assert chaos_30.injected > 0, \
            "the chaos run never actually saw a fault"
        assert chaotic.matches == clean.matches
        assert chaotic.candidate_scores == clean.candidate_scores
        assert chaotic.skipped == clean.skipped

    def test_documents_run_matches_fault_free(self, reddit_alter_egos,
                                              chaos_30):
        known = reddit_alter_egos.originals
        unknown = reddit_alter_egos.alter_egos[:5]

        install_fault_plan(None)
        clean = _pipeline().link_documents(known, unknown)

        install_fault_plan(chaos_30)
        chaotic = _pipeline().link_documents(known, unknown)

        assert chaotic == clean

    def test_explicit_policy_honored(self, reddit_alter_egos,
                                     chaos_30):
        pipeline = LinkingPipeline(
            PipelineConfig(words_per_alias=600, threshold=0.0),
            retry_policy=RetryPolicy(max_retries=12, base_delay=0.0,
                                     seed=chaos_30.seed))
        result = pipeline.link_documents(
            reddit_alter_egos.originals,
            reddit_alter_egos.alter_egos[:3])
        assert len(result.matches) == 3

    def test_no_retries_exhausts_under_heavy_faults(self,
                                                    reddit_alter_egos):
        previous = install_fault_plan(
            FaultPlan(seed=4, transient_rate=0.99))
        try:
            pipeline = LinkingPipeline(
                PipelineConfig(words_per_alias=600, threshold=0.0),
                retry_policy=RetryPolicy(max_retries=1,
                                         base_delay=0.0))
            with pytest.raises(RetryExhaustedError):
                pipeline.link_documents(
                    reddit_alter_egos.originals,
                    reddit_alter_egos.alter_egos[:2])
        finally:
            install_fault_plan(previous)

    def test_resume_without_checkpoint_rejected(self,
                                                reddit_alter_egos):
        with pytest.raises(ConfigurationError,
                           match="resume requires a checkpoint"):
            _pipeline().link_documents(
                reddit_alter_egos.originals,
                reddit_alter_egos.alter_egos[:1],
                resume=True)

    def test_checkpointed_chaos_run(self, tmp_path, reddit_alter_egos,
                                    chaos_30):
        """Checkpointing and fault injection compose."""
        known = reddit_alter_egos.originals
        unknown = reddit_alter_egos.alter_egos[:4]

        install_fault_plan(None)
        clean = _pipeline().link_documents(known, unknown)

        install_fault_plan(chaos_30)
        chaotic = _pipeline().link_documents(
            known, unknown, checkpoint=tmp_path / "chaos.ckpt")
        assert chaotic == clean
