"""Checkpoint store + resume-equals-uninterrupted (repro.resilience)."""

import json

import pytest

from repro.core.batch import BatchedLinker
from repro.core.linker import AliasLinker, Match
from repro.errors import CheckpointError
from repro.resilience.checkpoint import CheckpointStore, open_store


def _match(uid="tmg/u1", cid="reddit/u9", score=0.5):
    return Match(unknown_id=uid, candidate_id=cid, score=score,
                 accepted=score >= 0.419, first_stage_score=0.4)


class TestStore:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore(path, fingerprint={"k": 10})
        store.record("tmg/u1", [_match()], [("reddit/u9", 0.5),
                                            ("reddit/u3", 0.1)])
        again = CheckpointStore(path, fingerprint={"k": 10}).load()
        assert "tmg/u1" in again
        assert again.matches_for("tmg/u1") == [_match()]
        assert again.scores_for("tmg/u1") == [("reddit/u9", 0.5),
                                              ("reddit/u3", 0.1)]

    def test_file_always_parseable_between_records(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore(path)
        for i in range(5):
            store.record(f"u{i}", [_match(uid=f"u{i}")], [])
            # every on-disk state must be a loadable checkpoint
            assert len(CheckpointStore(path).load()) == i + 1

    def test_skipped_entries_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore(path)
        store.record("bad/doc", [], [],
                     skipped={"unknown_id": "bad/doc",
                              "reason": "text is None",
                              "stage": "validate"})
        again = CheckpointStore(path).load()
        assert again.skipped_for("bad/doc")["stage"] == "validate"
        assert again.matches_for("bad/doc") == []

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore(path, fingerprint={"k": 10}).record(
            "u", [_match()], [])
        with pytest.raises(CheckpointError):
            CheckpointStore(path, fingerprint={"k": 20}).load()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path / "nope.ckpt").load()

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text("{not json\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text(json.dumps({"kind": "forum-header"}) + "\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()

    def test_corrupt_entry_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore(path).record("u", [_match()], [])
        with open(path, "a") as fh:
            fh.write("{torn line\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()

    def test_no_stray_temp_file(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore(path).record("u", [_match()], [])
        assert not list(tmp_path.glob("*.tmp"))

    def test_discard(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = CheckpointStore(path)
        store.record("u", [_match()], [])
        store.discard()
        assert not path.exists()
        assert len(store) == 0


class TestOpenStore:
    def test_none_path_disables(self):
        assert open_store(None) is None

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        store = open_store(tmp_path / "new.ckpt", resume=True)
        assert len(store) == 0

    def test_resume_existing_loads(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore(path).record("u", [_match()], [])
        assert "u" in open_store(path, resume=True)


def _crash_after(n):
    """A CheckpointStore.record replacement raising KeyboardInterrupt
    (a real kill, not an Exception the quarantine logic would swallow)
    after *n* successful records."""
    original = CheckpointStore.record
    state = {"recorded": 0}

    def record(store, unknown_id, matches, scores, skipped=None):
        original(store, unknown_id, matches, scores, skipped=skipped)
        state["recorded"] += 1
        if state["recorded"] >= n:
            raise KeyboardInterrupt("simulated kill -9")

    return record


class TestResumeEqualsUninterrupted:
    def test_batched_linker_resume(self, tmp_path, monkeypatch,
                                   reddit_alter_egos):
        unknowns = reddit_alter_egos.alter_egos[:8]
        known = reddit_alter_egos.originals

        def fresh():
            return BatchedLinker(batch_size=20, k=5,
                                 threshold=0.0).fit(known)

        uninterrupted = fresh().link(unknowns)

        path = tmp_path / "batched.ckpt"
        monkeypatch.setattr(CheckpointStore, "record", _crash_after(3))
        with pytest.raises(KeyboardInterrupt):
            fresh().link(unknowns, checkpoint=path)
        monkeypatch.undo()

        done_before = len(CheckpointStore(path).load())
        assert 0 < done_before < len(unknowns)

        resumed = fresh().link(unknowns, checkpoint=path, resume=True)
        assert resumed == uninterrupted
        assert json.dumps(resumed.to_dict(), sort_keys=True) == \
            json.dumps(uninterrupted.to_dict(), sort_keys=True)

    def test_alias_linker_resume(self, tmp_path, monkeypatch,
                                 reddit_alter_egos):
        unknowns = reddit_alter_egos.alter_egos[:8]
        known = reddit_alter_egos.originals

        def fresh():
            return AliasLinker(threshold=0.0).fit(known)

        uninterrupted = fresh().link(unknowns)

        path = tmp_path / "alias.ckpt"
        monkeypatch.setattr(CheckpointStore, "record", _crash_after(4))
        with pytest.raises(KeyboardInterrupt):
            fresh().link(unknowns, checkpoint=path)
        monkeypatch.undo()

        resumed = fresh().link(unknowns, checkpoint=path, resume=True)
        assert resumed == uninterrupted

    def test_checkpointed_equals_plain(self, tmp_path,
                                       reddit_alter_egos):
        """Turning checkpointing on must not change the result."""
        unknowns = reddit_alter_egos.alter_egos[:6]
        known = reddit_alter_egos.originals
        plain = AliasLinker(threshold=0.0).fit(known).link(unknowns)
        ckpt = AliasLinker(threshold=0.0).fit(known).link(
            unknowns, checkpoint=tmp_path / "c.ckpt")
        assert ckpt == plain

    def test_resume_salvages_torn_tail(self, tmp_path,
                                       reddit_alter_egos):
        """A checkpoint with a truncated final line must resume: the
        complete records are kept, the torn one is quarantined to a
        sidecar, and the result is bit-identical to an uninterrupted
        run."""
        unknowns = reddit_alter_egos.alter_egos[:8]
        known = reddit_alter_egos.originals

        def fresh():
            return AliasLinker(threshold=0.0).fit(known)

        uninterrupted = fresh().link(unknowns)

        path = tmp_path / "torn.ckpt"
        fresh().link(unknowns[:5], checkpoint=path)
        # Simulate a crash mid-append: cut the final record in half.
        lines = path.read_text().splitlines()
        torn = lines[-1][:len(lines[-1]) // 2]
        path.write_text("\n".join(lines[:-1] + [torn]) + "\n")

        # The strict loader still refuses the file ...
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load()
        # ... but a salvage load keeps the 4 complete records and
        # quarantines the torn one.
        salvaged = CheckpointStore(path).load(salvage=True)
        assert len(salvaged) == 4
        sidecar = tmp_path / "torn.ckpt.quarantined"
        assert sidecar.read_text().strip() == torn

        resumed = fresh().link(unknowns, checkpoint=path, resume=True)
        assert resumed == uninterrupted
        assert json.dumps(resumed.to_dict(), sort_keys=True) == \
            json.dumps(uninterrupted.to_dict(), sort_keys=True)

    def test_salvage_rejects_mid_file_corruption(self, tmp_path):
        """Damage before the tail is untrustworthy even for salvage."""
        path = tmp_path / "mid.ckpt"
        store = CheckpointStore(path)
        store.record("u1", [_match(uid="u1")], [])
        store.record("u2", [_match(uid="u2")], [])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # corrupt u1, keep u2
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(path).load(salvage=True)

    def test_completed_resume_recomputes_nothing(self, tmp_path,
                                                 reddit_alter_egos,
                                                 monkeypatch):
        unknowns = reddit_alter_egos.alter_egos[:4]
        known = reddit_alter_egos.originals
        path = tmp_path / "done.ckpt"
        first = AliasLinker(threshold=0.0).fit(known).link(
            unknowns, checkpoint=path)

        def exploding_vectors(self, unknown, candidates,
                              use_activity=None):
            raise AssertionError("stage 2 ran on a completed resume")

        monkeypatch.setattr(AliasLinker, "_stage2_vectors",
                            exploding_vectors)
        resumed = AliasLinker(threshold=0.0).fit(known).link(
            unknowns, checkpoint=path, resume=True)
        assert resumed == first
