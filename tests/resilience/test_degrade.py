"""Deadline budgets, circuit breakers, degraded-mode linking."""

import json

import pytest

from repro.core.batch import BatchedLinker
from repro.core.linker import AliasLinker, Match
from repro.errors import ConfigurationError, DeadlineExceededError
from repro.obs.metrics import get_registry
from repro.resilience.degrade import CircuitBreaker, DeadlineBudget


class ManualClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _metric(name):
    return get_registry().snapshot().get(name, {}).get("value", 0.0)


class TestDeadlineBudget:
    def test_accounting(self):
        clock = ManualClock()
        budget = DeadlineBudget(100, clock=clock)
        assert budget.remaining_ms() == 100.0
        clock.advance(0.04)
        assert budget.elapsed_ms() == pytest.approx(40.0)
        assert budget.remaining_ms() == pytest.approx(60.0)
        assert not budget.expired()
        clock.advance(0.07)
        assert budget.expired()
        assert budget.remaining_ms() < 0

    def test_expiry_counted_once(self):
        clock = ManualClock()
        budget = DeadlineBudget(10, clock=clock)
        before = _metric("deadline_expired_total")
        clock.advance(1.0)
        assert budget.expired() and budget.expired()
        assert _metric("deadline_expired_total") == before + 1

    def test_strict_check_raises_with_stage(self):
        clock = ManualClock()
        budget = DeadlineBudget(10, degraded_ok=False, clock=clock)
        budget.check("restage")  # not expired: no-op
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as exc:
            budget.check("restage")
        assert exc.value.stage == "restage"

    def test_degraded_ok_check_never_raises(self):
        clock = ManualClock()
        budget = DeadlineBudget(10, clock=clock)
        clock.advance(1.0)
        budget.check("restage")

    def test_activity_reserve(self):
        clock = ManualClock()
        budget = DeadlineBudget(100, activity_reserve_ms=30,
                                clock=clock)
        assert not budget.activity_low()
        clock.advance(0.075)
        assert budget.activity_low()
        assert not budget.expired()

    @pytest.mark.parametrize("kwargs", [
        {"deadline_ms": 0}, {"deadline_ms": -5},
        {"deadline_ms": 10, "activity_reserve_ms": -1},
    ])
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeadlineBudget(**kwargs)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 1

    def test_short_circuits_counted(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        before = _metric("circuit_breaker_short_circuits_total")
        assert not breaker.allow()
        assert not breaker.allow()
        assert _metric("circuit_breaker_short_circuits_total") \
            == before + 2

    def test_half_open_recovery(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 recovery_time=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(6.0)
        assert breaker.allow()  # the half-open trial call
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=3,
                                 recovery_time=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_failure()  # one half-open failure re-trips
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_reset(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed" and breaker.allow()

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0}, {"recovery_time": 0},
        {"recovery_time": -1},
    ])
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(**kwargs)


class TestMatchSerialization:
    def test_full_fidelity_match_has_no_degraded_keys(self):
        match = Match(unknown_id="u", candidate_id="c", score=0.5,
                      accepted=True, first_stage_score=0.4)
        data = match.to_dict()
        assert "degraded" not in data
        assert "degraded_reasons" not in data
        assert Match.from_dict(data) == match

    def test_degraded_match_roundtrips(self):
        match = Match(unknown_id="u", candidate_id="c", score=0.5,
                      accepted=True, first_stage_score=0.5,
                      degraded=True,
                      degraded_reasons=("stage1_only",))
        data = json.loads(json.dumps(match.to_dict()))
        assert data["degraded"] is True
        assert data["degraded_reasons"] == ["stage1_only"]
        assert Match.from_dict(data) == match


@pytest.fixture(scope="module")
def corpus(reddit_alter_egos):
    return (reddit_alter_egos.originals,
            reddit_alter_egos.alter_egos[:6])


def _result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestDegradedLinking:
    def test_no_budget_is_byte_identical(self, corpus):
        known, unknowns = corpus
        plain = AliasLinker(threshold=0.0).fit(known).link(unknowns)
        with_kwarg = AliasLinker(threshold=0.0).fit(known).link(
            unknowns, budget=None)
        assert _result_json(plain) == _result_json(with_kwarg)

    def test_generous_budget_is_byte_identical(self, corpus):
        known, unknowns = corpus
        plain = AliasLinker(threshold=0.0).fit(known).link(unknowns)
        rich = AliasLinker(threshold=0.0).fit(known).link(
            unknowns, budget=DeadlineBudget(600_000))
        assert _result_json(plain) == _result_json(rich)
        assert rich.degraded() == []

    def test_expired_before_linking_quarantines(self, corpus):
        known, unknowns = corpus
        clock = ManualClock()
        budget = DeadlineBudget(10, clock=clock)
        clock.advance(1.0)
        result = AliasLinker(threshold=0.0).fit(known).link(
            unknowns, budget=budget)
        assert result.matches == []
        assert len(result.skipped) == len(unknowns)
        assert all(s.stage == "deadline" for s in result.skipped)

    def test_stage1_only_degradation(self, corpus):
        """Budget spent between the stages: every unknown still gets a
        match, scored from stage-1 evidence and flagged degraded."""
        known, unknowns = corpus
        clock = ManualClock()
        budget = DeadlineBudget(10, clock=clock)
        linker = AliasLinker(threshold=0.0).fit(known)
        inner = linker._reduce_isolated

        def expire_after_stage1(pending, skipped, store):
            out = inner(pending, skipped, store)
            clock.advance(1.0)
            return out

        linker._reduce_isolated = expire_after_stage1
        result = linker.link(unknowns, budget=budget)
        assert len(result.matches) == len(unknowns)
        assert all(m.degraded for m in result.matches)
        assert all(m.degraded_reasons == ("stage1_only",)
                   for m in result.matches)
        # Degraded scores ARE the stage-1 scores — honest accounting.
        for match in result.matches:
            assert match.score == match.first_stage_score

    def test_degraded_counter_incremented(self, corpus):
        known, unknowns = corpus
        clock = ManualClock()
        budget = DeadlineBudget(10, clock=clock)
        linker = AliasLinker(threshold=0.0).fit(known)
        inner = linker._reduce_isolated

        def expire_after_stage1(pending, skipped, store):
            out = inner(pending, skipped, store)
            clock.advance(1.0)
            return out

        linker._reduce_isolated = expire_after_stage1
        before = _metric("attribution_degraded_total")
        linker.link(unknowns, budget=budget)
        assert _metric("attribution_degraded_total") \
            == before + len(unknowns)

    def test_stylometry_only_shedding(self, corpus):
        """An exhausted activity reserve sheds the activity block but
        still runs the restage."""
        known, unknowns = corpus
        budget = DeadlineBudget(600_000,
                                activity_reserve_ms=600_000)
        result = AliasLinker(threshold=0.0).fit(known).link(
            unknowns, budget=budget)
        assert len(result.matches) == len(unknowns)
        assert all(m.degraded_reasons == ("stylometry_only",)
                   for m in result.matches)
        # The restage really ran: stylometry-only second-stage scores
        # differ from the stage-1 scores.
        assert any(m.score != m.first_stage_score
                   for m in result.matches)

    def test_strict_budget_raises(self, corpus):
        known, unknowns = corpus
        clock = ManualClock()
        budget = DeadlineBudget(10, degraded_ok=False, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            AliasLinker(threshold=0.0).fit(known).link(
                unknowns, budget=budget)

    def test_breaker_routes_around_failing_stage2(self, corpus):
        known, unknowns = corpus
        breaker = CircuitBreaker(failure_threshold=2)
        linker = AliasLinker(threshold=0.0,
                             breaker=breaker).fit(known)
        calls = {"n": 0}

        def failing_rescore(unknown, candidates, use_activity=None):
            calls["n"] += 1
            raise RuntimeError("stage 2 is down")

        linker._rescore = failing_rescore
        result = linker.link(unknowns)
        # The stage was only paid for until the breaker tripped.
        assert calls["n"] == 2
        assert breaker.state == "open"
        assert len(result.skipped) == 2
        degraded = result.degraded()
        assert len(degraded) == len(unknowns) - 2
        assert all(m.degraded_reasons == ("stage2_circuit_open",)
                   for m in degraded)

    def test_breaker_closed_changes_nothing(self, corpus):
        known, unknowns = corpus
        plain = AliasLinker(threshold=0.0).fit(known).link(unknowns)
        guarded = AliasLinker(
            threshold=0.0,
            breaker=CircuitBreaker(failure_threshold=5),
        ).fit(known).link(unknowns)
        assert _result_json(plain) == _result_json(guarded)


class TestBatchedDegradedLinking:
    def test_no_budget_is_byte_identical(self, corpus):
        known, unknowns = corpus
        plain = BatchedLinker(batch_size=20, k=5,
                              threshold=0.0).fit(known).link(unknowns)
        with_kwarg = BatchedLinker(batch_size=20, k=5,
                                   threshold=0.0).fit(known).link(
            unknowns, budget=None)
        assert _result_json(plain) == _result_json(with_kwarg)

    def test_expired_before_linking_quarantines(self, corpus):
        known, unknowns = corpus
        clock = ManualClock()
        budget = DeadlineBudget(10, clock=clock)
        clock.advance(1.0)
        result = BatchedLinker(batch_size=20, k=5,
                               threshold=0.0).fit(known).link(
            unknowns, budget=budget)
        assert result.matches == []
        assert all(s.stage == "deadline" for s in result.skipped)
        assert len(result.skipped) == len(unknowns)

    def test_mid_flight_expiry_mixes_degraded_and_deadline(
            self, corpus, monkeypatch):
        """The deadline lands while pair 0's inner stage 1 runs: pair 0
        degrades to its stage-1 scores, later pairs quarantine."""
        known, unknowns = corpus
        clock = ManualClock()
        budget = DeadlineBudget(10, clock=clock)
        inner = AliasLinker._reduce_isolated

        def expire_after_stage1(self, pending, skipped, store):
            out = inner(self, pending, skipped, store)
            clock.advance(1.0)
            return out

        monkeypatch.setattr(AliasLinker, "_reduce_isolated",
                            expire_after_stage1)
        result = BatchedLinker(batch_size=20, k=5,
                               threshold=0.0).fit(known).link(
            unknowns, budget=budget)
        assert len(result.matches) + len(result.skipped) \
            == len(unknowns)
        degraded = result.degraded()
        assert degraded
        assert all(m.degraded_reasons == ("stage1_only",)
                   for m in degraded)
        assert all(s.stage == "deadline" for s in result.skipped)

    def test_strict_budget_raises(self, corpus):
        known, unknowns = corpus
        clock = ManualClock()
        budget = DeadlineBudget(10, degraded_ok=False, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            BatchedLinker(batch_size=20, k=5,
                          threshold=0.0).fit(known).link(
                unknowns, budget=budget)


class TestEpisodeDegradedAccounting:
    """Deadline budgets inside the episode harness: degraded and
    quarantined episodes must surface as honest per-cell counts, never
    as silently polluted quality metrics."""

    def test_tight_budget_reports_degraded_episodes(
            self, episode_suite, monkeypatch):
        """The budget expires between the stages of every episode:
        each one degrades to stage-1 evidence and says so."""
        from repro.eval.episodes import run_episodes

        episodes, config = episode_suite
        clock = ManualClock()
        inner = AliasLinker._reduce_isolated

        def expire_after_stage1(self, pending, skipped, store):
            out = inner(self, pending, skipped, store)
            clock.advance(1.0)
            return out

        monkeypatch.setattr(AliasLinker, "_reduce_isolated",
                            expire_after_stage1)

        def budget_factory():
            clock.now = 0.0
            return DeadlineBudget(10, clock=clock)

        before = _metric("episodes_degraded_total")
        report = run_episodes(episodes, features=config.features,
                              budget_factory=budget_factory)
        assert report.n_degraded == len(episodes)
        assert report.n_skipped == 0
        assert _metric("episodes_degraded_total") \
            == before + len(episodes)
        for outcome in report.outcomes:
            assert outcome.degraded
            assert outcome.degraded_reasons == ("stage1_only",)
            assert outcome.rank is None
        for metrics in report.cells.values():
            assert metrics["n_degraded"] == metrics["n_episodes"]
            assert metrics["n_full"] == 0.0
            # No full-fidelity episodes -> no quality numbers, rather
            # than numbers quietly computed from degraded evidence.
            assert metrics["auc"] == 0.0
            assert metrics["brier"] == 0.0

    def test_expired_budget_quarantines_episodes(self, episode_suite):
        from repro.eval.episodes import run_episodes

        episodes, config = episode_suite
        clock = ManualClock()

        def budget_factory():
            clock.now = 0.0
            budget = DeadlineBudget(10, clock=clock)
            clock.advance(1.0)  # already past the 10 ms deadline
            return budget

        report = run_episodes(episodes, features=config.features,
                              budget_factory=budget_factory)
        assert report.n_skipped == len(episodes)
        assert report.n_degraded == 0
        for outcome in report.outcomes:
            assert outcome.skipped
            assert outcome.reason.startswith("deadline")
        for metrics in report.cells.values():
            assert metrics["n_skipped"] == metrics["n_episodes"]

    def test_generous_budget_is_invisible(self, episode_suite):
        from repro.eval.episodes import run_episodes

        episodes, config = episode_suite
        plain = run_episodes(episodes, features=config.features)
        rich = run_episodes(
            episodes, features=config.features,
            budget_factory=lambda: DeadlineBudget(600_000))
        assert json.dumps(plain.to_dict(), sort_keys=True) \
            == json.dumps(rich.to_dict(), sort_keys=True)
