"""Unit tests for fault injection (repro.resilience.faults)."""

import json

import pytest

from repro.errors import ConfigurationError, TransientError
from repro.resilience.faults import (
    DEFAULT_FAULT_RATE,
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    FaultPlan,
    get_fault_plan,
    guarded_call,
    install_fault_plan,
    plan_from_env,
)
from repro.resilience.policy import RetryPolicy


def _injection_pattern(plan, site, n=200):
    pattern = []
    for _ in range(n):
        try:
            plan.check(site)
            pattern.append(False)
        except TransientError:
            pattern.append(True)
    return pattern


class TestDeterminism:
    def test_same_seed_same_pattern(self):
        a = FaultPlan(seed=11, transient_rate=0.3)
        b = FaultPlan(seed=11, transient_rate=0.3)
        assert _injection_pattern(a, "x") == _injection_pattern(b, "x")

    def test_different_seed_different_pattern(self):
        a = FaultPlan(seed=1, transient_rate=0.3)
        b = FaultPlan(seed=2, transient_rate=0.3)
        assert _injection_pattern(a, "x") != _injection_pattern(b, "x")

    def test_sites_are_independent(self):
        plan = FaultPlan(seed=5, transient_rate=0.3)
        other = FaultPlan(seed=5, transient_rate=0.3)
        # Consuming invocations at one site must not shift another's.
        _injection_pattern(plan, "noise")
        assert _injection_pattern(plan, "x") == \
            _injection_pattern(other, "x")

    def test_reset_restarts_schedule(self):
        plan = FaultPlan(seed=5, transient_rate=0.3)
        first = _injection_pattern(plan, "x")
        plan.reset()
        assert _injection_pattern(plan, "x") == first


class TestInjection:
    def test_zero_rate_never_injects(self):
        plan = FaultPlan(seed=1, transient_rate=0.0)
        assert not any(_injection_pattern(plan, "x"))
        assert plan.injected == 0

    def test_rate_roughly_honored(self):
        plan = FaultPlan(seed=3, transient_rate=0.3)
        pattern = _injection_pattern(plan, "x", n=2000)
        rate = sum(pattern) / len(pattern)
        assert 0.25 < rate < 0.35

    def test_max_faults_cap(self):
        plan = FaultPlan(seed=3, transient_rate=0.9, max_faults=5)
        pattern = _injection_pattern(plan, "x", n=200)
        assert sum(pattern) == 5
        assert plan.injected == 5

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_rate=1.0)

    def test_wrap_precedes_call(self):
        plan = FaultPlan(seed=0, transient_rate=0.99, max_faults=1)
        wrapped = plan.wrap("w", lambda: "done")
        with pytest.raises(TransientError):
            wrapped()
        assert wrapped() == "done"  # cap spent, now quiet


class TestCorruption:
    def test_corrupt_line_deterministic(self):
        a = FaultPlan(seed=9, corrupt_rate=0.9)
        b = FaultPlan(seed=9, corrupt_rate=0.9)
        line = json.dumps({"alias": "vendor", "n": 3})
        assert a.corrupt_line(line) == b.corrupt_line(line)

    def test_corrupt_line_changes_payload(self):
        plan = FaultPlan(seed=9, corrupt_rate=0.99)
        line = "x" * 64
        corrupted = [plan.corrupt_line(line) for _ in range(20)]
        assert any(c != line for c in corrupted)

    def test_zero_rate_no_corruption(self):
        plan = FaultPlan(seed=9, corrupt_rate=0.0)
        assert plan.corrupt_line("payload") == "payload"

    def test_skew_timestamp(self):
        plan = FaultPlan(skew_hours=-3)
        assert plan.skew_timestamp(1_500_000_000) == \
            1_500_000_000 - 3 * 3600


class TestEnvAndInstall:
    def test_plan_from_env_unset(self):
        assert plan_from_env({}) is None

    def test_plan_from_env_seed_only(self):
        plan = plan_from_env({FAULT_SEED_ENV: "42"})
        assert plan.seed == 42
        assert plan.transient_rate == DEFAULT_FAULT_RATE

    def test_plan_from_env_with_rate(self):
        plan = plan_from_env({FAULT_SEED_ENV: "1",
                              FAULT_RATE_ENV: "0.25"})
        assert plan.transient_rate == 0.25

    @pytest.mark.parametrize("env", [
        {FAULT_SEED_ENV: "not-a-number"},
        {FAULT_SEED_ENV: "1", FAULT_RATE_ENV: "lots"},
    ])
    def test_bad_env_rejected(self, env):
        with pytest.raises(ConfigurationError):
            plan_from_env(env)

    def test_install_wins_and_restores(self):
        plan = FaultPlan(seed=77, transient_rate=0.0)
        previous = install_fault_plan(plan)
        try:
            assert get_fault_plan() is plan
        finally:
            install_fault_plan(previous)


class TestGuardedCall:
    def test_no_plan_plain_call(self):
        previous = install_fault_plan(None)
        try:
            # With injection fully off the call must go straight
            # through (env may still define a plan; force none by
            # installing a zero-rate one).
            install_fault_plan(FaultPlan(seed=0, transient_rate=0.0))
            assert guarded_call("site", lambda x: x + 1, 1) == 2
        finally:
            install_fault_plan(previous)

    def test_faults_absorbed_by_retries(self):
        previous = install_fault_plan(
            FaultPlan(seed=123, transient_rate=0.5))
        try:
            results = [guarded_call("flaky.site", lambda: "ok",
                                    policy=RetryPolicy(
                                        max_retries=30,
                                        base_delay=0.0))
                       for _ in range(50)]
            assert results == ["ok"] * 50
        finally:
            install_fault_plan(previous)
