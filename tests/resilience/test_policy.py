"""Unit tests for retry policies (repro.resilience.policy)."""

import pytest

from repro.errors import (
    ConfigurationError,
    RetryExhaustedError,
    TransientError,
)
from repro.resilience.policy import NO_RETRY, RetryPolicy


class Flaky:
    """Fails the first *n* calls with TransientError, then succeeds."""

    def __init__(self, n):
        self.n = n
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n:
            raise TransientError(f"boom #{self.calls}")
        return "ok"


class FakeTime:
    def __init__(self):
        self.now = 0.0
        self.slept = []

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds

    def clock(self):
        return self.now


class TestSchedule:
    def test_exponential_growth(self):
        policy = RetryPolicy(max_retries=4, base_delay=1.0,
                             multiplier=2.0, max_delay=100.0)
        assert list(policy.delays()) == [1.0, 2.0, 4.0, 8.0]

    def test_max_delay_cap(self):
        policy = RetryPolicy(max_retries=6, base_delay=1.0,
                             multiplier=10.0, max_delay=50.0)
        assert max(policy.delays()) == 50.0

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(max_retries=5, base_delay=1.0, jitter=0.5,
                        seed=42)
        b = RetryPolicy(max_retries=5, base_delay=1.0, jitter=0.5,
                        seed=42)
        assert list(a.delays()) == list(b.delays())

    def test_jitter_depends_on_seed(self):
        a = RetryPolicy(max_retries=5, base_delay=1.0, jitter=0.5,
                        seed=1)
        b = RetryPolicy(max_retries=5, base_delay=1.0, jitter=0.5,
                        seed=2)
        assert list(a.delays()) != list(b.delays())

    def test_jitter_stays_in_bounds(self):
        policy = RetryPolicy(max_retries=20, base_delay=1.0,
                             multiplier=1.0, jitter=0.25, seed=7)
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_total_backoff(self):
        policy = RetryPolicy(max_retries=3, base_delay=1.0,
                             multiplier=2.0)
        assert policy.total_backoff() == 1.0 + 2.0 + 4.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"base_delay": -0.5},
        {"multiplier": 0.5},
        {"jitter": 1.5},
        {"deadline": 0.0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestCall:
    def test_success_passthrough(self):
        fake = FakeTime()
        policy = RetryPolicy(max_retries=3)
        assert policy.call(lambda: 41 + 1, sleep=fake.sleep,
                           clock=fake.clock) == 42
        assert fake.slept == []

    def test_recovers_after_transient_failures(self):
        fake = FakeTime()
        flaky = Flaky(2)
        policy = RetryPolicy(max_retries=3, base_delay=1.0)
        assert policy.call(flaky, sleep=fake.sleep,
                           clock=fake.clock) == "ok"
        assert flaky.calls == 3
        assert fake.slept == [1.0, 2.0]

    def test_exhaustion_raises_with_accounting(self):
        fake = FakeTime()
        flaky = Flaky(10)
        policy = RetryPolicy(max_retries=2, base_delay=1.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(flaky, sleep=fake.sleep, clock=fake.clock)
        err = excinfo.value
        assert err.attempts == 3
        assert err.backoff_seconds == 1.0 + 2.0
        assert isinstance(err.last_error, TransientError)
        assert isinstance(err.__cause__, TransientError)
        assert "3 attempt(s)" in str(err)

    def test_non_retryable_propagates_immediately(self):
        fake = FakeTime()
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("not transient")

        policy = RetryPolicy(max_retries=5)
        with pytest.raises(ValueError):
            policy.call(bad, sleep=fake.sleep, clock=fake.clock)
        assert len(calls) == 1

    def test_deadline_stops_early(self):
        fake = FakeTime()
        flaky = Flaky(100)
        policy = RetryPolicy(max_retries=10, base_delay=10.0,
                             multiplier=1.0, deadline=25.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(flaky, sleep=fake.sleep, clock=fake.clock)
        # 10 + 10 sleeps fit in 25 s; the third is clamped to the
        # remaining 5 s, after which the budget is spent.
        assert fake.slept == [10.0, 10.0, 5.0]
        assert excinfo.value.attempts == 4

    def test_backoff_never_overshoots_deadline(self):
        fake = FakeTime()
        policy = RetryPolicy(max_retries=50, base_delay=7.0,
                             multiplier=1.5, deadline=30.0)
        with pytest.raises(RetryExhaustedError):
            policy.call(Flaky(100), sleep=fake.sleep, clock=fake.clock)
        # No individual sleep may carry the clock past the deadline.
        assert fake.now <= 30.0
        assert sum(fake.slept) <= 30.0

    def test_deadline_clamp_still_allows_success(self):
        fake = FakeTime()
        flaky = Flaky(3)
        policy = RetryPolicy(max_retries=10, base_delay=10.0,
                             multiplier=1.0, deadline=25.0)
        # The clamped third backoff leaves room for the attempt that
        # finally succeeds.
        assert policy.call(flaky, sleep=fake.sleep,
                           clock=fake.clock) == "ok"
        assert fake.slept == [10.0, 10.0, 5.0]

    def test_on_retry_callback(self):
        fake = FakeTime()
        seen = []
        policy = RetryPolicy(max_retries=3, base_delay=1.0)
        policy.call(Flaky(2), sleep=fake.sleep, clock=fake.clock,
                    on_retry=lambda attempt, exc: seen.append(attempt))
        assert seen == [0, 1]

    def test_wrap_returns_retrying_callable(self):
        fake = FakeTime()
        policy = RetryPolicy(max_retries=3, base_delay=1.0)
        retrying = policy.wrap(Flaky(1), sleep=fake.sleep,
                               clock=fake.clock)
        assert retrying() == "ok"

    def test_no_retry_is_single_attempt(self):
        flaky = Flaky(1)
        with pytest.raises(RetryExhaustedError) as excinfo:
            NO_RETRY.call(flaky, sleep=lambda s: None)
        assert excinfo.value.attempts == 1
        assert flaky.calls == 1

    def test_retryable_builtin_families(self):
        fake = FakeTime()
        calls = []

        def flaky_io():
            calls.append(1)
            if len(calls) == 1:
                raise ConnectionError("reset by peer")
            return "ok"

        policy = RetryPolicy(max_retries=2, base_delay=0.1)
        assert policy.call(flaky_io, sleep=fake.sleep,
                           clock=fake.clock) == "ok"
