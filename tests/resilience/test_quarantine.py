"""Graceful degradation: malformed unknowns are quarantined, not fatal."""

import dataclasses

import pytest

from repro.core.batch import BatchedLinker
from repro.core.documents import AliasDocument
from repro.core.linker import AliasLinker, check_document
from repro.errors import DatasetError
from repro.obs.metrics import counter

_ACCEPTED = counter("attribution_accepted_total")
_REJECTED = counter("attribution_rejected_total")
_SKIPPED = counter("attribution_skipped_total")


def _broken(document, **overrides):
    return dataclasses.replace(document, **overrides)


class _CounterDeltas:
    def __enter__(self):
        self.accepted = _ACCEPTED.value
        self.rejected = _REJECTED.value
        self.skipped = _SKIPPED.value
        return self

    def __exit__(self, *exc):
        self.accepted = _ACCEPTED.value - self.accepted
        self.rejected = _REJECTED.value - self.rejected
        self.skipped = _SKIPPED.value - self.skipped
        return False


class TestCheckDocument:
    def test_accepts_real_document(self, reddit_alter_egos):
        check_document(reddit_alter_egos.alter_egos[0])

    @pytest.mark.parametrize("overrides, needle", [
        ({"text": None}, "text is"),
        ({"doc_id": ""}, "doc_id"),
        ({"words": None}, "words"),
        ({"words": (3, 5)}, "words"),
        ({"activity": [[1.0, 2.0]]}, "1-dimensional"),
        ({"activity": [float("nan")] * 24}, "non-finite"),
        ({"activity": ["high", "low"]}, "not numeric"),
    ])
    def test_rejects_malformed(self, reddit_alter_egos, overrides,
                               needle):
        doc = _broken(reddit_alter_egos.alter_egos[0], **overrides)
        with pytest.raises(DatasetError, match=needle):
            check_document(doc)

    def test_rejects_non_document(self):
        with pytest.raises(DatasetError, match="not an AliasDocument"):
            check_document({"doc_id": "u1"})

    def test_rejects_empty_document(self):
        doc = AliasDocument(doc_id="e", alias="e", forum="f", text="",
                            words=(), timestamps=(), activity=None)
        with pytest.raises(DatasetError, match="empty"):
            check_document(doc)


class TestBatchedQuarantine:
    def test_bad_unknown_does_not_abort_run(self, reddit_alter_egos):
        good = reddit_alter_egos.alter_egos[:5]
        bad = _broken(good[2], text=None)
        unknowns = good[:2] + [bad] + good[3:]
        linker = BatchedLinker(batch_size=20, threshold=0.0).fit(
            reddit_alter_egos.originals)

        with _CounterDeltas() as delta:
            result = linker.link(unknowns)

        assert len(result.skipped) == 1
        entry = result.skipped[0]
        assert entry.unknown_id == bad.doc_id
        assert entry.stage == "validate"
        assert "text is" in entry.reason
        # Every well-formed unknown was still linked.
        assert len(result.matches) == len(unknowns) - 1
        assert bad.doc_id not in {m.unknown_id for m in result.matches}
        # Accounting invariant over the run.
        assert delta.skipped == 1
        assert delta.accepted + delta.rejected + delta.skipped == \
            len(unknowns)

    def test_all_bad_still_returns(self, reddit_alter_egos):
        bad = [_broken(d, text=None)
               for d in reddit_alter_egos.alter_egos[:3]]
        linker = BatchedLinker(batch_size=20).fit(
            reddit_alter_egos.originals)
        result = linker.link(bad)
        assert result.matches == []
        assert len(result.skipped) == 3


class TestAliasLinkerQuarantine:
    def test_bad_unknown_quarantined(self, reddit_alter_egos):
        good = reddit_alter_egos.alter_egos[:4]
        bad = _broken(good[0], words=None)
        unknowns = [bad] + good[1:]
        linker = AliasLinker(threshold=0.0).fit(
            reddit_alter_egos.originals)

        with _CounterDeltas() as delta:
            result = linker.link(unknowns)

        assert [s.unknown_id for s in result.skipped] == [bad.doc_id]
        assert len(result.matches) == len(unknowns) - 1
        assert delta.accepted + delta.rejected + delta.skipped == \
            len(unknowns)

    def test_skipped_survive_serialization(self, reddit_alter_egos):
        from repro.core.linker import LinkResult

        good = reddit_alter_egos.alter_egos[:3]
        bad = _broken(good[1], text=None)
        linker = AliasLinker(threshold=0.0).fit(
            reddit_alter_egos.originals)
        result = linker.link([good[0], bad, good[2]])
        assert LinkResult.from_dict(result.to_dict()) == result

    def test_idless_document_gets_placeholder(self, reddit_alter_egos):
        bad = _broken(reddit_alter_egos.alter_egos[0], doc_id="")
        linker = AliasLinker(threshold=0.0).fit(
            reddit_alter_egos.originals)
        result = linker.link([bad])
        assert result.skipped[0].unknown_id == "<unknown #0>"

    def test_link_one_raises(self, reddit_alter_egos):
        bad = _broken(reddit_alter_egos.alter_egos[0], text=None)
        linker = AliasLinker(threshold=0.0).fit(
            reddit_alter_egos.originals)
        with pytest.raises(DatasetError, match="text is"):
            linker.link_one(bad)

    def test_stage2_failure_quarantined(self, reddit_alter_egos,
                                        monkeypatch):
        unknowns = reddit_alter_egos.alter_egos[:4]
        linker = AliasLinker(threshold=0.0).fit(
            reddit_alter_egos.originals)
        victim = unknowns[1].doc_id
        original = AliasLinker._stage2_vectors

        def flaky_vectors(self, unknown, candidates, use_activity=None):
            if unknown.doc_id == victim:
                raise RuntimeError("GPU fell off the bus")
            return original(self, unknown, candidates, use_activity)

        monkeypatch.setattr(AliasLinker, "_stage2_vectors",
                            flaky_vectors)
        result = linker.link(unknowns)
        assert [s.unknown_id for s in result.skipped] == [victim]
        assert result.skipped[0].stage == "attribute"
        assert "GPU fell off the bus" in result.skipped[0].reason
        assert len(result.matches) == 3
