"""Crash-safe index snapshots (repro.resilience.snapshot).

The acceptance criterion of the snapshot layer:
``link(load(save(fit(world))))`` is bit-identical to
``link(fit(world))`` for both linker flavors, and any torn write, bit
flip or truncation is either healed (verified load) or reported as a
typed :class:`~repro.errors.SnapshotError` naming the damaged section.
"""

import json

import pytest

from repro.core.batch import BatchedLinker
from repro.core.linker import AliasLinker
from repro.errors import NotFittedError, SnapshotError
from repro.resilience.faults import FaultPlan, install_fault_plan
from repro.resilience.snapshot import (
    SNAPSHOT_MAGIC,
    load_index,
    salvage_index,
    save_index,
    snapshot_info,
    verify_index,
)


@pytest.fixture(scope="module")
def corpus(reddit_alter_egos):
    return (reddit_alter_egos.originals,
            reddit_alter_egos.alter_egos[:6])


def _result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestRoundTrip:
    def test_alias_linker_bit_identical(self, corpus, tmp_path):
        known, unknowns = corpus
        linker = AliasLinker(threshold=0.0).fit(known)
        direct = linker.link(unknowns)
        path = tmp_path / "alias.snap"
        info = save_index(linker, path)
        assert info["bytes"] == path.stat().st_size
        loaded = load_index(path)
        assert _result_json(loaded.link(unknowns)) == \
            _result_json(direct)

    def test_batched_linker_bit_identical(self, corpus, tmp_path):
        known, unknowns = corpus
        linker = BatchedLinker(batch_size=20, k=5,
                               threshold=0.0).fit(known)
        direct = linker.link(unknowns)
        path = tmp_path / "batched.snap"
        save_index(linker, path)
        loaded = load_index(path)
        assert isinstance(loaded, BatchedLinker)
        assert loaded.batch_size == 20
        assert _result_json(loaded.link(unknowns)) == \
            _result_json(direct)

    @pytest.mark.parametrize("kwargs", [
        {"workers": 2},
        {"block_size": 8},
        {"cache": False},
        {"workers": 3, "block_size": 16, "cache": True},
    ])
    def test_load_variations_bit_identical(self, corpus, tmp_path,
                                           kwargs):
        """Perf knobs at load time never change the numbers."""
        known, unknowns = corpus
        linker = AliasLinker(threshold=0.0).fit(known)
        direct = linker.link(unknowns)
        path = tmp_path / "alias.snap"
        save_index(linker, path)
        loaded = load_index(path, **kwargs)
        assert _result_json(loaded.link(unknowns)) == \
            _result_json(direct)

    def test_mmap_and_copy_loads_agree(self, corpus, tmp_path):
        known, unknowns = corpus
        linker = AliasLinker(threshold=0.0).fit(known)
        path = tmp_path / "alias.snap"
        save_index(linker, path)
        a = load_index(path, mmap=True).link(unknowns)
        b = load_index(path, mmap=False).link(unknowns)
        assert _result_json(a) == _result_json(b)

    def test_no_stray_temp_files(self, corpus, tmp_path):
        known, _ = corpus
        save_index(AliasLinker(threshold=0.0).fit(known),
                   tmp_path / "clean.snap")
        assert [p.name for p in tmp_path.iterdir()] == ["clean.snap"]

    def test_unfitted_linker_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_index(AliasLinker(), tmp_path / "nope.snap")


class TestInvindexSnapshot:
    """Invindex snapshots: per-shard posting sections round-trip."""

    @pytest.fixture(scope="class")
    def baseline(self, corpus):
        known, unknowns = corpus
        linker = AliasLinker(threshold=0.0).fit(known)
        return _result_json(linker.link(unknowns))

    @pytest.fixture()
    def snap(self, corpus, tmp_path):
        known, _ = corpus
        linker = AliasLinker(threshold=0.0, stage1="invindex",
                             shards=3).fit(known)
        path = tmp_path / "invindex.snap"
        save_index(linker, path)
        return path

    def test_load_autodetects_and_attaches(self, corpus, snap,
                                           baseline):
        _, unknowns = corpus
        loaded = load_index(snap)
        assert loaded.stage1 == "invindex"
        # The saved shards were adopted, not rebuilt.
        assert loaded.reducer._index is not None
        assert loaded.reducer._index.n_shards == 3
        assert loaded.shards == 3
        assert _result_json(loaded.link(unknowns)) == baseline

    def test_mmap_load_bit_identical(self, corpus, snap, baseline):
        _, unknowns = corpus
        loaded = load_index(snap, mmap=True)
        assert loaded.reducer._index is not None
        assert _result_json(loaded.link(unknowns)) == baseline

    def test_shard_count_mismatch_rebuilds(self, corpus, snap,
                                           baseline):
        _, unknowns = corpus
        loaded = load_index(snap, shards=2)
        assert loaded.reducer._index.n_shards == 2
        assert _result_json(loaded.link(unknowns)) == baseline

    def test_stage1_override_to_blocked(self, corpus, snap, baseline):
        _, unknowns = corpus
        loaded = load_index(snap, stage1="blocked")
        assert loaded.stage1 == "blocked"
        assert _result_json(loaded.link(unknowns)) == baseline

    def test_blocked_snapshot_loads_as_invindex(self, corpus,
                                                tmp_path, baseline):
        # A snapshot written by a blocked linker has no posting
        # sections; asking for invindex at load time builds the index
        # from the saved matrix.
        known, unknowns = corpus
        path = tmp_path / "blocked.snap"
        save_index(AliasLinker(threshold=0.0).fit(known), path)
        loaded = load_index(path, stage1="invindex", shards=2)
        assert loaded.stage1 == "invindex"
        assert loaded.reducer._index.n_shards == 2
        assert _result_json(loaded.link(unknowns)) == baseline

    def test_invindex_snapshot_verifies(self, snap):
        report = verify_index(snap)
        assert report.ok
        names = {s["name"] for s in snapshot_info(snap)["sections"]}
        assert "invindex.meta" in names
        assert "invindex.shard0.data" in names
        assert "invindex.shard2.indptr" in names


class TestVerify:
    @pytest.fixture(scope="class")
    def snap(self, corpus, tmp_path_factory):
        known, _ = corpus
        path = tmp_path_factory.mktemp("verify") / "idx.snap"
        save_index(AliasLinker(threshold=0.0).fit(known), path)
        return path

    def test_pristine_file_verifies(self, snap):
        report = verify_index(snap)
        assert report.ok
        assert report.damaged() == []
        assert all(s.ok for s in report.sections)

    def test_info_reads_header_only(self, snap):
        header = snapshot_info(snap)
        assert header["format_version"] == 1
        assert header["algo"] == "alias-linker"
        assert len(header["config_digest"]) == 64
        assert header["file_bytes"] >= header["expected_bytes"]

    def test_bit_flip_names_the_section(self, snap, tmp_path):
        blob = bytearray(snap.read_bytes())
        header = snapshot_info(snap)
        # Flip one bit in the middle of the last section's payload.
        target = header["sections"][-1]
        start = header["expected_bytes"] - target["nbytes"]
        blob[start + target["nbytes"] // 2] ^= 0x10
        bad = tmp_path / "flipped.snap"
        bad.write_bytes(bytes(blob))
        report = verify_index(bad)
        assert report.damaged() == [target["name"]]
        with pytest.raises(SnapshotError) as exc:
            load_index(bad)
        assert exc.value.section == target["name"]

    def test_truncated_tail_reported_and_salvageable(self, snap,
                                                     tmp_path):
        blob = snap.read_bytes()
        cut = tmp_path / "torn.snap"
        cut.write_bytes(blob[:int(len(blob) * 0.9)])
        report = verify_index(cut)
        assert not report.ok
        damaged = set(report.damaged())
        assert damaged
        sections, sreport = salvage_index(cut)
        assert set(sections) == {
            s.name for s in sreport.sections if s.ok}
        assert damaged.isdisjoint(sections)
        # The intact prefix is fully recovered.
        assert "documents" in sections and "vocab" in sections

    def test_garbage_file_raises_typed_error(self, tmp_path):
        junk = tmp_path / "junk.snap"
        junk.write_bytes(b"definitely not " + SNAPSHOT_MAGIC)
        with pytest.raises(SnapshotError):
            verify_index(junk)
        with pytest.raises(SnapshotError):
            snapshot_info(junk)

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_index(tmp_path / "absent.snap")


@pytest.fixture(scope="module")
def structure_suite(world):
    """A small episode suite built with all three feature families."""
    from repro.config import FeatureConfig
    from repro.eval.episodes import EpisodeConfig, sample_episodes

    config = EpisodeConfig(
        seed=5, n_way=4, episodes_per_cell=3, buckets=(300,),
        features=FeatureConfig.from_spec(
            "stylometry,activity,structure"))
    return sample_episodes(world, config), config


class TestStructureRoundTrip:
    """The structure feature family must survive save/load unharmed:
    a reloaded linker scores episodes bit-identically to the fitted
    one it was snapshotted from."""

    def test_structure_linker_save_load_bit_identical(
            self, structure_suite, tmp_path):
        episodes, _ = structure_suite
        episode = episodes[0]
        linker = AliasLinker(k=len(episode.candidates), threshold=0.0,
                             use_structure=True)
        linker.fit(list(episode.candidates))
        direct = linker.link([episode.unknown])
        path = tmp_path / "structure.snap"
        save_index(linker, path)
        loaded = load_index(path)
        assert loaded.use_structure is True
        assert _result_json(loaded.link([episode.unknown])) \
            == _result_json(direct)

    def test_episode_run_through_snapshots_bit_identical(
            self, structure_suite, tmp_path):
        """run_episodes(snapshot_dir=...) saves and reloads every
        fitted linker; the round-trip must be invisible in every
        outcome and cell metric."""
        import json as _json

        from repro.eval.episodes import run_episodes

        episodes, config = structure_suite
        direct = run_episodes(episodes, features=config.features)
        via_snapshot = run_episodes(episodes, features=config.features,
                                    snapshot_dir=tmp_path)
        assert _json.dumps(direct.to_dict(), sort_keys=True) \
            == _json.dumps(via_snapshot.to_dict(), sort_keys=True)
        assert direct.n_degraded == 0 and direct.n_skipped == 0

    def test_structure_free_snapshot_still_loads(self, corpus,
                                                 tmp_path):
        """Back-compat: snapshots written without the structure family
        load into a linker with the family off."""
        known, unknowns = corpus
        linker = AliasLinker(threshold=0.0).fit(known)
        path = tmp_path / "plain.snap"
        save_index(linker, path)
        loaded = load_index(path)
        assert loaded.use_structure is False
        assert _result_json(loaded.link(unknowns)) \
            == _result_json(linker.link(unknowns))


class TestUnderFsFaults:
    @pytest.fixture
    def fs_chaos(self):
        plan = FaultPlan(seed=1, torn_rate=0.3, enospc_rate=0.3,
                         read_corrupt_rate=0.3)
        previous = install_fault_plan(plan)
        yield plan
        install_fault_plan(previous)

    def test_save_load_cycle_survives_injection(self, corpus,
                                                tmp_path, fs_chaos):
        """Torn writes, ENOSPC and read bit flips at 30% are absorbed
        by retries; the loaded linker still links bit-identically."""
        known, unknowns = corpus
        linker = AliasLinker(threshold=0.0).fit(known)
        install_fault_plan(None)
        direct = linker.link(unknowns)
        install_fault_plan(fs_chaos)
        for round_no in range(3):
            path = tmp_path / f"chaos{round_no}.snap"
            save_index(linker, path)
            assert verify_index(path).ok
            loaded = load_index(path)
            install_fault_plan(None)
            replay = loaded.link(unknowns)
            install_fault_plan(fs_chaos)
            assert _result_json(replay) == _result_json(direct)
        assert fs_chaos.injected > 0, \
            "the chaos run never actually saw a fault"


class TestDeltaSnapshot:
    """Indexes carrying a live delta segment snapshot and restore
    without folding it — and stay bit-identical."""

    def test_live_delta_round_trips(self, corpus, tmp_path):
        from repro.core.incremental import IncrementalLinker

        known, unknowns = corpus
        inc = IncrementalLinker(threshold=0.0, stage1="invindex",
                                shards=2)
        inc.fit(known[:-2])
        inc.add_known(known[-2:])
        linker = inc._linker
        index = linker.reducer._index
        if index.n_delta == 0:
            pytest.skip("fixture too small to keep a live delta")
        baseline = _result_json(linker.link(unknowns))

        path = tmp_path / "delta.snap"
        save_index(linker, path)
        loaded = load_index(path)
        restored = loaded.reducer._index
        assert restored is not None
        assert restored.n_delta == index.n_delta
        assert restored.main_ends == index.main_ends
        assert _result_json(loaded.link(unknowns)) == baseline

    def test_auto_snapshot_resolves_on_load(self, corpus, tmp_path):
        known, unknowns = corpus
        linker = AliasLinker(threshold=0.0, stage1="auto").fit(known)
        baseline = _result_json(linker.link(unknowns))
        path = tmp_path / "auto.snap"
        save_index(linker, path)
        loaded = load_index(path)
        assert loaded.stage1 == "auto"
        # The cost model re-resolves on the restored matrix: the
        # fixture corpus is far below the dense ceiling.
        assert loaded.reducer.active_stage1 == "dense"
        assert _result_json(loaded.link(unknowns)) == baseline
