"""Unit tests for identity disclosures (repro.synth.evidence)."""

import numpy as np
import pytest

from repro.synth import evidence as ev
from repro.synth.personas import generate_persona
from repro.synth.rng import substream


@pytest.fixture
def persona():
    p = generate_persona(1, 100)
    p.aliases["reddit"] = "openfox"
    p.aliases["tmg"] = "darkwolf"
    return p


def _rng(seed=1):
    return np.random.default_rng(seed)


class TestDisclosureMessage:
    def test_age_disclosure(self, persona):
        text, facts = ev.disclosure_message(persona, ev.AGE, _rng())
        assert facts == {ev.AGE: str(persona.attributes.age)}
        assert str(persona.attributes.age) in text

    def test_city_disclosure(self, persona):
        text, facts = ev.disclosure_message(persona, ev.CITY, _rng())
        assert facts[ev.CITY] == persona.attributes.city
        assert persona.attributes.city in text

    def test_vendor_complaint_includes_both(self, persona):
        text, facts = ev.disclosure_message(
            persona, ev.VENDOR_COMPLAINT, _rng())
        vendor, drug = facts[ev.VENDOR_COMPLAINT].split("|")
        assert vendor in text
        assert drug in text

    def test_philosopher_none_when_absent(self, persona):
        if persona.attributes.philosopher is None:
            assert ev.disclosure_message(
                persona, ev.PHILOSOPHER, _rng()) is None

    def test_unknown_kind_raises(self, persona):
        with pytest.raises(ValueError):
            ev.disclosure_message(persona, "shoe_size", _rng())


class TestUniqueLeaks:
    def test_alias_reference_names_other_forum(self, persona):
        result = ev.alias_reference(persona, "reddit", "tmg", _rng())
        assert result is not None
        text, facts = result
        assert "darkwolf" in text
        assert facts[ev.ALIAS_REF] == "tmg:darkwolf"

    def test_alias_reference_missing_forum(self, persona):
        assert ev.alias_reference(persona, "reddit", "dm",
                                  _rng()) is None

    def test_referral_link_stable_per_persona(self, persona):
        _, facts_a = ev.referral_link(persona, _rng(1))
        _, facts_b = ev.referral_link(persona, _rng(2))
        assert facts_a[ev.REFERRAL_LINK] == facts_b[ev.REFERRAL_LINK]

    def test_email_leak_stable_per_persona(self, persona):
        _, facts_a = ev.email_leak(persona, _rng(1))
        _, facts_b = ev.email_leak(persona, _rng(2))
        assert facts_a[ev.EMAIL] == facts_b[ev.EMAIL]


class TestSampleDisclosures:
    def test_count_respected(self, persona):
        out = ev.sample_disclosures(persona, "reddit", ["tmg"],
                                    _rng(), count=5, careless=True)
        assert len(out) <= 5
        assert len(out) >= 4  # some kinds may be absent

    def test_careless_uses_open_kinds(self, persona):
        out = ev.sample_disclosures(persona, "reddit", [], _rng(),
                                    count=30, careless=True)
        kinds = {next(iter(facts)) for _, facts in out}
        assert kinds <= set(ev.OPEN_KINDS)

    def test_cautious_uses_dark_kinds(self, persona):
        out = ev.sample_disclosures(persona, "tmg", [], _rng(),
                                    count=30, careless=False)
        kinds = {next(iter(facts)) for _, facts in out}
        assert kinds <= set(ev.DARK_KINDS)

    def test_unique_leaks_at_rate_one(self, persona):
        out = ev.sample_disclosures(persona, "reddit", ["tmg"],
                                    _rng(), count=10, careless=True,
                                    unique_leak_rate=1.0)
        kinds = {next(iter(facts)) for _, facts in out}
        assert kinds <= set(ev.UNIQUE_KINDS)

    def test_no_unique_without_other_forums(self, persona):
        out = ev.sample_disclosures(persona, "reddit", [], _rng(),
                                    count=10, careless=True,
                                    unique_leak_rate=1.0)
        kinds = {next(iter(facts)) for _, facts in out}
        assert not kinds & set(ev.UNIQUE_KINDS)
