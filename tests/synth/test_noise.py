"""Unit tests for dirt injection (repro.synth.noise)."""

import numpy as np
import pytest

from repro.synth.noise import (
    NoiseConfig,
    NoiseInjector,
    fake_email,
    fake_pgp_block,
    fake_url,
    foreign_message,
    quote_wrap,
    short_reaction,
)
from repro.textproc import patterns


def _rng(seed=1):
    return np.random.default_rng(seed)


class TestGenerators:
    def test_pgp_block_matches_removal_pattern(self):
        block = fake_pgp_block(_rng())
        assert patterns.PGP_BLOCK_RE.search(block)

    def test_url_matches_removal_pattern(self):
        url = fake_url(_rng())
        match = patterns.URL_RE.search(url)
        assert match and patterns.looks_like_url(match)

    def test_email_matches_removal_pattern(self):
        email = fake_email(_rng(), "shadowfox")
        assert patterns.EMAIL_RE.search(email)
        assert "shadowfox" in email

    def test_foreign_message_not_english(self):
        from repro.textproc.langdetect import default_detector

        detector = default_detector()
        hits = sum(detector.is_english(foreign_message(_rng(i)))
                   for i in range(10))
        assert hits <= 1

    def test_foreign_message_specific_language(self):
        from repro.textproc.langdetect import default_detector

        text = foreign_message(_rng(), language="de")
        assert default_detector().detect(text).language == "de"

    def test_short_reaction_short(self):
        from repro.textproc.tokenizer import count_words

        assert count_words(short_reaction(_rng())) < 10

    def test_quote_wrap_contains_both(self):
        out = quote_wrap(_rng(3), "their words", "my reply")
        assert "their words" in out
        assert "my reply" in out
        cleaned = patterns.strip_quotes(out)
        assert "their words" not in cleaned
        assert "my reply" in cleaned


class TestNoiseConfig:
    def test_validate_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            NoiseConfig(emoji_rate=1.5).validate()

    def test_default_valid(self):
        NoiseConfig().validate()


class TestNoiseInjector:
    CLEAN = ("a perfectly ordinary message with more than ten words "
             "about the usual topics people discuss here")

    def test_zero_rates_passthrough(self):
        config = NoiseConfig(emoji_rate=0, url_rate=0, email_rate=0,
                             pgp_rate=0, quote_rate=0, edit_rate=0,
                             ascii_art_rate=0, foreign_rate=0,
                             short_rate=0)
        injector = NoiseInjector(config, _rng(), "alice")
        assert injector.apply(self.CLEAN) == self.CLEAN

    def test_short_rate_one_replaces(self):
        config = NoiseConfig(short_rate=1.0)
        injector = NoiseInjector(config, _rng(), "alice")
        out = injector.apply(self.CLEAN)
        assert out != self.CLEAN
        assert len(out.split()) < 10

    def test_pgp_rate_one_appends_block(self):
        config = NoiseConfig(short_rate=0, foreign_rate=0, pgp_rate=1.0)
        injector = NoiseInjector(config, _rng(), "alice")
        out = injector.apply(self.CLEAN)
        assert "BEGIN PGP" in out

    def test_edit_marker_embeds_alias(self):
        config = NoiseConfig(short_rate=0, foreign_rate=0,
                             edit_rate=1.0)
        injector = NoiseInjector(config, _rng(), "shadowfox")
        out = injector.apply(self.CLEAN)
        assert "Edit by shadowfox" in out

    def test_quote_uses_remembered_material(self):
        config = NoiseConfig(short_rate=0, foreign_rate=0,
                             quote_rate=1.0)
        injector = NoiseInjector(config, _rng(), "alice")
        injector.remember_quotable("somebody elses unique content here")
        out = injector.apply(self.CLEAN)
        assert "somebody" in out

    def test_quotable_memory_bounded(self):
        injector = NoiseInjector(NoiseConfig(), _rng(), "alice")
        for i in range(100):
            injector.remember_quotable(f"msg {i}")
        assert len(injector.quotable) == 50
