"""Unit tests for persona generation (repro.synth.personas)."""

import numpy as np
import pytest

from repro.synth.personas import (
    DEFAULT_STYLE_PARAMS,
    StyleParams,
    generate_persona,
    make_alias,
    sample_attributes,
    sample_habits,
    sample_style,
)
from repro.synth.rng import substream


class TestStyleParams:
    def test_invalid_concentration(self):
        with pytest.raises(ValueError):
            StyleParams(function_concentration=0.0)

    def test_invalid_marker_count(self):
        with pytest.raises(ValueError):
            StyleParams(max_phrases=-1)

    def test_invalid_spread(self):
        with pytest.raises(ValueError):
            StyleParams(rate_spread=1.5)


class TestSampleStyle:
    def test_weights_are_distributions(self):
        style = sample_style(substream(1, "s"))
        assert style.function_weights.sum() == pytest.approx(1.0)
        assert style.content_weights.sum() == pytest.approx(1.0)

    def test_rates_in_bounds(self):
        style = sample_style(substream(2, "s"))
        for name in ("phrase_rate", "slang_rate", "emoticon_rate",
                     "comma_rate", "ellipsis_rate", "exclaim_rate",
                     "question_rate", "digit_rate"):
            assert 0.0 <= getattr(style, name) <= 1.0

    def test_marker_counts_bounded(self):
        params = StyleParams(max_phrases=2, max_slang=1, max_typos=1,
                             max_emoticons=0)
        style = sample_style(substream(3, "s"), params)
        assert len(style.phrases) <= 2
        assert len(style.slang) <= 1
        assert len(style.typo_words) <= 1
        assert style.emoticons == ()

    def test_zero_spread_gives_population_midpoints(self):
        params = StyleParams(rate_spread=0.0)
        a = sample_style(substream(4, "a"), params)
        b = sample_style(substream(4, "b"), params)
        assert a.comma_rate == pytest.approx(b.comma_rate)
        assert a.mean_sentence_words == pytest.approx(
            b.mean_sentence_words)


class TestDrift:
    def test_zero_drift_identity(self):
        style = sample_style(substream(5, "s"))
        assert style.drifted(substream(5, "d"), 0.0) is style

    def test_full_drift_changes_weights(self):
        style = sample_style(substream(6, "s"))
        drifted = style.drifted(substream(6, "d"), 1.0)
        assert not np.allclose(style.function_weights,
                               drifted.function_weights)

    def test_small_drift_stays_close(self):
        style = sample_style(substream(7, "s"))
        small = style.drifted(substream(7, "d1"), 0.1)
        large = style.drifted(substream(7, "d2"), 0.9)
        d_small = np.abs(style.function_weights
                         - small.function_weights).sum()
        d_large = np.abs(style.function_weights
                         - large.function_weights).sum()
        assert d_small < d_large

    def test_invalid_drift(self):
        style = sample_style(substream(8, "s"))
        with pytest.raises(ValueError):
            style.drifted(substream(8, "d"), 1.5)


class TestHabits:
    def test_hourly_distribution_normalized(self):
        habits = sample_habits(substream(9, "h"))
        profile = habits.hourly_distribution()
        assert profile.shape == (24,)
        assert profile.sum() == pytest.approx(1.0)

    def test_timezone_shifts_profile(self):
        habits = sample_habits(substream(10, "h"), timezone_offset=0)
        local = habits.hourly_distribution(local=True)
        utc = habits.hourly_distribution(local=False)
        assert np.allclose(local, utc)  # offset 0: identical

    def test_nonzero_offset_rolls(self):
        habits = sample_habits(substream(11, "h"), timezone_offset=5)
        local = habits.hourly_distribution(local=True)
        utc = habits.hourly_distribution(local=False)
        assert np.allclose(np.roll(local, -5), utc)

    def test_weekend_shift_changes_profile(self):
        habits = sample_habits(substream(12, "h"))
        if abs(habits.weekend_shift) > 0.5:
            weekday = habits.hourly_distribution()
            weekend = habits.hourly_distribution(
                shifted=habits.weekend_shift)
            assert not np.allclose(weekday, weekend)


class TestAttributes:
    def test_age_adult(self):
        attrs = sample_attributes(substream(13, "a"))
        assert 18 <= attrs.age < 55

    def test_city_country_consistent(self):
        from repro.synth.wordlists import CITIES

        attrs = sample_attributes(substream(14, "a"))
        assert (attrs.city, attrs.country) in CITIES

    def test_politics_assigned(self):
        attrs = sample_attributes(substream(15, "a"))
        assert attrs.politics in ("progressive", "conservative",
                                  "libertarian", "apolitical")


class TestPersona:
    def test_generation_deterministic(self):
        a = generate_persona(1, 42)
        b = generate_persona(1, 42)
        assert np.allclose(a.style.function_weights,
                           b.style.function_weights)
        assert a.attributes == b.attributes

    def test_join_forum_registers_alias(self):
        persona = generate_persona(1, 1)
        persona.join_forum(substream(1, "j"), "reddit", "alice")
        assert persona.alias_on("reddit") == "alice"
        assert persona.style_on("reddit") is persona.style

    def test_join_same_forum_twice_rejected(self):
        persona = generate_persona(1, 2)
        persona.join_forum(substream(1, "j"), "reddit", "alice")
        with pytest.raises(ValueError):
            persona.join_forum(substream(1, "j"), "reddit", "alice2")

    def test_drifted_forum_style_differs(self):
        persona = generate_persona(1, 3)
        persona.join_forum(substream(1, "j"), "tmg", "dark1", drift=0.3)
        assert not np.allclose(
            persona.style.function_weights,
            persona.style_on("tmg").function_weights)

    def test_alias_on_unknown_forum(self):
        persona = generate_persona(1, 4)
        assert persona.alias_on("nowhere") is None


class TestMakeAlias:
    def test_unique_aliases(self):
        taken = set()
        stream = substream(1, "alias")
        aliases = [make_alias(stream, taken) for _ in range(50)]
        assert len(set(a.lower() for a in aliases)) == 50

    def test_bot_alias_has_marker(self):
        taken = set()
        stream = substream(2, "alias")
        alias = make_alias(stream, taken, bot=True)
        lowered = alias.lower()
        assert lowered.startswith("bot") or lowered.endswith("bot")

    def test_vendor_alias_from_brand_pool(self):
        from repro.synth.wordlists import VENDOR_NAMES

        taken = set()
        stream = substream(3, "alias")
        alias = make_alias(stream, taken, vendor=True)
        assert any(alias.startswith(brand) for brand in VENDOR_NAMES)
