"""Unit tests for deterministic RNG substreams (repro.synth.rng)."""

import numpy as np
import pytest

from repro.synth import rng as rng_mod


class TestSubstream:
    def test_same_keys_same_stream(self):
        a = rng_mod.substream(1, "persona", 5).random(4)
        b = rng_mod.substream(1, "persona", 5).random(4)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = rng_mod.substream(1, "persona", 5).random(4)
        b = rng_mod.substream(1, "persona", 6).random(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng_mod.substream(1, "x").random(4)
        b = rng_mod.substream(2, "x").random(4)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        a = rng_mod.substream(1, "a", "b").random(2)
        b = rng_mod.substream(1, "b", "a").random(2)
        assert not np.array_equal(a, b)

    def test_mixed_key_types(self):
        stream = rng_mod.substream(1, "alias", 3, "reddit")
        assert 0.0 <= stream.random() < 1.0


class TestChoice:
    def test_choice_returns_member(self):
        stream = rng_mod.substream(1, "c")
        items = ["a", "b", "c"]
        assert rng_mod.choice(stream, items) in items

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            rng_mod.choice(rng_mod.substream(1), [])

    def test_sample_without_replacement_distinct(self):
        stream = rng_mod.substream(1, "s")
        out = rng_mod.sample_without_replacement(stream, list(range(10)), 5)
        assert len(out) == len(set(out)) == 5

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            rng_mod.sample_without_replacement(
                rng_mod.substream(1), [1, 2], 3)


class TestZipfWeights:
    def test_normalized(self):
        weights = rng_mod.zipf_weights(100)
        assert weights.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = rng_mod.zipf_weights(50)
        assert np.all(np.diff(weights) < 0)

    def test_single_element(self):
        assert rng_mod.zipf_weights(1)[0] == pytest.approx(1.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            rng_mod.zipf_weights(0)


class TestDirichletPerturbed:
    def test_output_is_distribution(self):
        base = rng_mod.zipf_weights(20)
        out = rng_mod.dirichlet_perturbed(
            rng_mod.substream(1), base, 100.0)
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out > 0)

    def test_high_concentration_stays_close(self):
        base = rng_mod.zipf_weights(20)
        tight = rng_mod.dirichlet_perturbed(
            rng_mod.substream(1), base, 1e6)
        loose = rng_mod.dirichlet_perturbed(
            rng_mod.substream(1), base, 5.0)
        assert np.abs(tight - base).sum() < np.abs(loose - base).sum()

    def test_invalid_concentration(self):
        with pytest.raises(ValueError):
            rng_mod.dirichlet_perturbed(
                rng_mod.substream(1), rng_mod.zipf_weights(5), 0.0)

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            rng_mod.dirichlet_perturbed(
                rng_mod.substream(1), np.zeros((2, 2)), 1.0)


class TestMixDistributions:
    def test_endpoints(self):
        a = rng_mod.zipf_weights(5)
        b = np.full(5, 0.2)
        assert np.allclose(rng_mod.mix_distributions(a, b, 0.0), a)
        assert np.allclose(rng_mod.mix_distributions(a, b, 1.0), b)

    def test_midpoint_normalized(self):
        a = rng_mod.zipf_weights(5)
        b = np.full(5, 0.2)
        mixed = rng_mod.mix_distributions(a, b, 0.5)
        assert mixed.sum() == pytest.approx(1.0)

    def test_invalid_weight(self):
        a = rng_mod.zipf_weights(3)
        with pytest.raises(ValueError):
            rng_mod.mix_distributions(a, a, 1.5)
