"""Unit tests for the message generator (repro.synth.textgen)."""

import numpy as np
import pytest

from repro.synth.personas import StyleParams, sample_style
from repro.synth.rng import substream
from repro.synth.textgen import (
    MessageGenerator,
    repeated_sentence_spam,
    review_post,
    spam_variants,
    vendor_showcase,
)
from repro.textproc.tokenizer import count_words


@pytest.fixture
def generator():
    style = sample_style(substream(1, "style"))
    return MessageGenerator(style, substream(1, "gen"),
                            topic_keywords=("vendor", "shipping"))


class TestSentence:
    def test_sentence_nonempty(self, generator):
        sentence = generator.sentence()
        assert count_words(sentence) >= 3

    def test_sentence_ends_with_punctuation(self, generator):
        for _ in range(20):
            sentence = generator.sentence()
            stripped = sentence.rstrip()
            # may end with an emoticon after the punctuation
            assert any(p in stripped[-4:] for p in ".!?")

    def test_deterministic_given_stream(self):
        style = sample_style(substream(2, "style"))
        a = MessageGenerator(style, substream(2, "gen")).sentence()
        b = MessageGenerator(style, substream(2, "gen")).sentence()
        assert a == b


class TestMessage:
    def test_target_words_reached(self, generator):
        # the generator's budget counts whitespace tokens, which runs a
        # few words above the tokenizer's linguistic word count
        message = generator.message(target_words=120)
        assert count_words(message) >= 110
        assert len(message.split()) >= 120

    def test_default_length_near_style(self):
        style = sample_style(substream(3, "style"))
        gen = MessageGenerator(style, substream(3, "gen"))
        lengths = [len(gen.message().split()) for _ in range(50)]
        assert np.mean(lengths) > 5

    def test_messages_batch(self, generator):
        batch = generator.messages(5)
        assert len(batch) == 5
        assert all(isinstance(m, str) and m for m in batch)

    def test_messages_mostly_english(self, generator):
        from repro.textproc.langdetect import default_detector

        detector = default_detector()
        hits = sum(
            detector.is_english(generator.message(target_words=40))
            for _ in range(30))
        assert hits >= 25  # generated prose must pass polishing step 7


class TestAuthorSignal:
    def test_two_authors_have_different_function_profiles(self):
        """The core premise: different personas produce measurably
        different word distributions."""
        from collections import Counter

        texts = {}
        for pid in (1, 2):
            style = sample_style(substream(10 + pid, "style"))
            gen = MessageGenerator(style, substream(10 + pid, "gen"))
            texts[pid] = " ".join(gen.messages(30, target_words=100))
        counters = {pid: Counter(t.lower().split())
                    for pid, t in texts.items()}
        shared = set(counters[1]) & set(counters[2])
        assert len(shared) > 20  # same language...
        diffs = sum(
            abs(counters[1][w] / sum(counters[1].values())
                - counters[2][w] / sum(counters[2].values()))
            for w in shared)
        assert diffs > 0.01  # ...different style

    def test_typo_habit_expressed(self):
        style = sample_style(substream(20, "style"))
        style = type(style)(**{**style.__dict__,
                               "typo_words": ("definitely",),
                               "slang_rate": 0.0,
                               "phrase_rate": 0.0})
        gen = MessageGenerator(style, substream(20, "gen"))
        blob = " ".join(gen.messages(100, target_words=50))
        if "definately" in blob or "definitely" in blob:
            assert "definitely" not in blob  # always misspelled


class TestVendorContent:
    def test_showcase_mentions_brand(self, generator):
        text = vendor_showcase(substream(4, "v"), "AcidQueen",
                               generator)
        assert "AcidQueen" in text
        assert "official" in text.lower()

    def test_review_mentions_vendor_and_drug(self, generator):
        text = review_post(substream(5, "r"), "AcidQueen", generator,
                           "white molly")
        assert "AcidQueen" in text
        assert "white molly" in text

    def test_spam_variants_near_duplicates(self, generator):
        base = "this is the original advertisement " * 3
        variants = spam_variants(substream(6, "s"), base.strip(), 4)
        assert len(variants) == 4
        assert variants[0] == base.strip()
        base_words = set(base.split())
        for variant in variants[1:]:
            overlap = len(set(variant.split()) & base_words)
            assert overlap >= len(base_words) - 3

    def test_repeated_sentence_spam_low_diversity(self, generator):
        from repro.textproc.tokenizer import distinct_word_ratio

        spam = repeated_sentence_spam(substream(7, "s"), generator)
        assert distinct_word_ratio(spam) < 0.5
