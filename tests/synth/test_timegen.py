"""Unit tests for timestamp generation (repro.synth.timegen)."""

import numpy as np
import pytest

from repro.core.calendars import is_weekend
from repro.forums.models import DAY, HOUR
from repro.synth.personas import ActivityHabits, sample_habits
from repro.synth.rng import substream
from repro.synth.timegen import SamplingWindow, TimestampSampler, \
    YEAR_2017


class TestSamplingWindow:
    def test_default_is_2017(self):
        import datetime as dt

        start = dt.datetime.fromtimestamp(YEAR_2017.start,
                                          tz=dt.timezone.utc)
        end = dt.datetime.fromtimestamp(YEAR_2017.end,
                                        tz=dt.timezone.utc)
        assert start.year == end.year == 2017

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SamplingWindow(start=100, end=100)

    def test_n_days(self):
        window = SamplingWindow(start=0, end=10 * DAY)
        assert window.n_days == 10


class TestTimestampSampler:
    def _sampler(self, seed=1, tz=0):
        habits = sample_habits(substream(seed, "h"), timezone_offset=tz)
        return TimestampSampler(habits, substream(seed, "t"))

    def test_count_and_order(self):
        stamps = self._sampler().sample(100)
        assert len(stamps) == 100
        assert stamps == sorted(stamps)

    def test_within_window(self):
        stamps = self._sampler().sample(200)
        assert all(YEAR_2017.start - DAY <= t <= YEAR_2017.end + DAY
                   for t in stamps)

    def test_zero_count(self):
        assert self._sampler().sample(0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            self._sampler().sample(-1)

    def test_deterministic(self):
        a = self._sampler(seed=5).sample(50)
        b = self._sampler(seed=5).sample(50)
        assert a == b

    def test_hours_follow_profile(self):
        """Sampled weekday hours must correlate with the habit profile."""
        habits = ActivityHabits(
            timezone_offset=0,
            peak_hours=(12.0,), peak_widths=(1.0,), peak_weights=(1.0,),
            weekend_shift=0.0, night_owl_floor=0.01,
        )
        sampler = TimestampSampler(habits, substream(9, "t"))
        stamps = [t for t in sampler.sample(600) if not is_weekend(t)]
        hours = np.array([(t % DAY) // HOUR for t in stamps])
        near_noon = np.mean((hours >= 10) & (hours <= 14))
        assert near_noon > 0.8

    def test_weekend_shift_visible(self):
        habits = ActivityHabits(
            timezone_offset=0,
            peak_hours=(6.0,), peak_widths=(1.0,), peak_weights=(1.0,),
            weekend_shift=8.0, night_owl_floor=0.01,
        )
        sampler = TimestampSampler(habits, substream(10, "t"))
        stamps = sampler.sample(800)
        weekday_hours = np.array([(t % DAY) // HOUR for t in stamps
                                  if not is_weekend(t)])
        weekend_hours = np.array([(t % DAY) // HOUR for t in stamps
                                  if is_weekend(t)])
        assert weekday_hours.mean() + 2 < weekend_hours.mean()
