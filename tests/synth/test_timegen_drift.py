"""Tests for annual habit drift (§VI) in the timestamp sampler."""

import numpy as np
import pytest

from repro.core.calendars import is_weekend
from repro.forums.models import DAY, HOUR
from repro.synth.personas import ActivityHabits, sample_habits
from repro.synth.rng import substream
from repro.synth.timegen import TimestampSampler, YEAR_2017


def _habits(drift):
    return ActivityHabits(
        timezone_offset=0,
        peak_hours=(12.0,), peak_widths=(1.0,), peak_weights=(1.0,),
        weekend_shift=0.0, night_owl_floor=0.01,
        annual_drift_hours=drift,
    )


def _mean_hour(stamps, window):
    hours = []
    for t in stamps:
        if is_weekend(t):
            continue
        day = (t - window.start) // DAY
        hours.append(((t % DAY) // HOUR, day))
    return hours


class TestAnnualDrift:
    def test_zero_drift_stationary(self):
        sampler = TimestampSampler(_habits(0.0), substream(1, "t"))
        stamps = sampler.sample(800)
        hours = [h for h, _ in _mean_hour(stamps, YEAR_2017)]
        assert 11 <= np.mean(hours) <= 13

    def test_drift_shifts_late_year_posts(self):
        sampler = TimestampSampler(_habits(8.0), substream(2, "t"))
        stamps = sampler.sample(2000)
        pairs = _mean_hour(stamps, YEAR_2017)
        early = [h for h, d in pairs if d < 90]
        late = [h for h, d in pairs if d > 270]
        assert len(early) > 50 and len(late) > 50
        # +-4h drift across the year: late-year posts sit hours later
        assert np.mean(late) - np.mean(early) > 3.0

    def test_negative_drift_shifts_earlier(self):
        sampler = TimestampSampler(_habits(-8.0), substream(3, "t"))
        stamps = sampler.sample(2000)
        pairs = _mean_hour(stamps, YEAR_2017)
        early = [h for h, d in pairs if d < 90]
        late = [h for h, d in pairs if d > 270]
        assert np.mean(late) - np.mean(early) < -3.0

    def test_sample_habits_default_no_drift(self):
        habits = sample_habits(substream(4, "h"))
        assert habits.annual_drift_hours == 0.0

    def test_sample_habits_with_max_drift(self):
        habits = sample_habits(substream(5, "h"), max_annual_drift=4.0)
        assert -4.0 <= habits.annual_drift_hours <= 4.0


class TestChronologicalSplit:
    def _record(self, n=40):
        from repro.forums.models import Message, UserRecord

        record = UserRecord(alias="alice", forum="f")
        for i in range(n):
            record.add(Message(
                message_id=f"m{i}", author="alice",
                text=f"chronological message {i} some words",
                timestamp=1_490_000_000 + i * DAY,
                forum="f", section="s"))
        return record

    def test_halves_are_time_ordered(self):
        from repro.eval.alterego import split_record

        original, alter = split_record(
            self._record(), np.random.default_rng(1),
            mode="chronological")
        assert max(original.timestamps) < min(alter.timestamps)

    def test_random_halves_interleave(self):
        from repro.eval.alterego import split_record

        original, alter = split_record(
            self._record(), np.random.default_rng(1), mode="random")
        assert max(original.timestamps) > min(alter.timestamps)

    def test_unknown_mode_rejected(self):
        from repro.eval.alterego import split_record

        with pytest.raises(ValueError):
            split_record(self._record(), np.random.default_rng(1),
                         mode="alphabetical")
