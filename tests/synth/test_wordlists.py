"""Sanity tests for the generator word inventories (repro.synth.wordlists)."""

import pytest

from repro.synth import wordlists


class TestInventories:
    def test_function_words_lowercase_unique(self):
        words = wordlists.FUNCTION_WORDS
        assert len(words) == len(set(words))
        assert all(w == w.lower() for w in words)

    def test_content_words_unique(self):
        words = wordlists.CONTENT_WORDS
        assert len(words) == len(set(words))

    def test_content_words_alpha(self):
        assert all(w.isalpha() for w in wordlists.CONTENT_WORDS)

    def test_phrases_multiword_lowercase(self):
        for phrase in wordlists.PHRASES:
            assert " " in phrase
            assert phrase == phrase.lower()

    def test_phrases_unique(self):
        assert len(wordlists.PHRASES) == len(set(wordlists.PHRASES))

    def test_typo_map_values_differ_from_keys(self):
        for correct, typo in wordlists.TYPO_MAP.items():
            assert correct != typo

    def test_alias_parts_nonempty(self):
        assert len(wordlists.ALIAS_ADJECTIVES) > 20
        assert len(wordlists.ALIAS_NOUNS) > 20

    def test_cities_have_countries(self):
        for city, country in wordlists.CITIES:
            assert city and country

    def test_inventories_are_large_enough_for_sampling(self):
        # persona sampling draws up to these many without replacement
        assert len(wordlists.PHRASES) >= 12
        assert len(wordlists.SLANG) >= 8
        assert len(wordlists.TYPO_MAP) >= 5
        assert len(wordlists.EMOTICONS) >= 4
        assert len(wordlists.HOBBIES) >= 4
        assert len(wordlists.VIDEO_GAMES) >= 4


class TestLanguageCompatibility:
    def test_function_words_mostly_pass_language_detector(self):
        """Messages built from these inventories must read as English
        to the polishing pipeline (step 7)."""
        from repro.textproc.langdetect import default_detector

        detector = default_detector()
        text = " ".join(wordlists.FUNCTION_WORDS[:80])
        assert detector.detect(text).language == "en"

    def test_content_words_read_as_english(self):
        from repro.textproc.langdetect import default_detector

        detector = default_detector()
        text = " ".join(wordlists.CONTENT_WORDS[:120])
        assert detector.detect(text).language == "en"

    def test_long_words_survive_polishing_cap(self):
        from repro.config import MAX_WORD_LENGTH

        for pool in (wordlists.FUNCTION_WORDS, wordlists.CONTENT_WORDS,
                     wordlists.SLANG):
            assert all(len(w) <= MAX_WORD_LENGTH for w in pool)
