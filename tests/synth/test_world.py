"""Unit and integration tests for world generation (repro.synth.world)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.synth.world import (
    DM,
    REDDIT,
    TMG,
    ForumLoad,
    WorldConfig,
    build_world,
    small_world,
)


class TestWorldConfig:
    def test_defaults_valid(self):
        WorldConfig()

    def test_overlap_exceeding_forum_size_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(tmg_users=5, dm_users=5, tmg_dm_overlap=6)

    def test_reddit_overlap_exceeding_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(reddit_users=10, tmg_users=4, dm_users=4,
                        tmg_dm_overlap=4, reddit_dark_overlap=5)

    def test_negative_users_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(reddit_users=-1)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(vendor_fraction=1.5)

    def test_bad_load_rejected(self):
        with pytest.raises(ConfigurationError):
            ForumLoad(heavy_messages=(10, 5)).validate()


class TestWorldStructure:
    def test_three_forums(self, world):
        assert set(world.forums) == {REDDIT, TMG, DM}

    def test_forum_sizes_close_to_config(self, world):
        cfg = world.config
        # bots add a few extra users per forum
        assert world.forums[REDDIT].n_users >= cfg.reddit_users
        assert world.forums[TMG].n_users >= cfg.tmg_users
        assert world.forums[DM].n_users >= cfg.dm_users

    def test_links_counts(self, world):
        cfg = world.config
        expected = cfg.tmg_dm_overlap + cfg.reddit_dark_overlap
        assert len(world.links) == expected

    def test_linked_aliases_exist_on_both_forums(self, world):
        for link in world.links:
            assert link.alias_a in world.forums[link.forum_a].users
            assert link.alias_b in world.forums[link.forum_b].users

    def test_linked_aliases_mapping(self, world):
        mapping = world.linked_aliases(TMG, DM)
        assert len(mapping) == world.config.tmg_dm_overlap
        reverse = world.linked_aliases(DM, TMG)
        assert {v: k for k, v in mapping.items()} == reverse

    def test_persona_of_resolves(self, world):
        link = world.links[0]
        persona = world.persona_of(link.forum_a, link.alias_a)
        assert persona is not None
        assert persona.alias_on(link.forum_b) == link.alias_b

    def test_utc_offsets_differ_across_forums(self, world):
        offsets = {f.utc_offset_hours for f in world.forums.values()}
        assert len(offsets) > 1  # the IV-B alignment problem exists

    def test_deterministic(self):
        a = small_world(seed=123)
        b = small_world(seed=123)
        assert a.forums[REDDIT].n_messages == b.forums[REDDIT].n_messages
        assert sorted(u for u in a.forums[TMG].users) == \
            sorted(u for u in b.forums[TMG].users)

    def test_different_seeds_differ(self):
        a = small_world(seed=1)
        b = small_world(seed=2)
        assert sorted(a.forums[TMG].users) != sorted(b.forums[TMG].users)


class TestWorldContent:
    def test_bots_present(self, world):
        from repro.textproc.cleaning import is_bot_alias

        bots = [a for a in world.forums[REDDIT].users
                if is_bot_alias(a)]
        assert len(bots) >= 1

    def test_messages_have_2017_timestamps(self, world):
        import datetime as dt

        for message in world.forums[TMG].iter_messages():
            year = dt.datetime.fromtimestamp(
                message.timestamp, tz=dt.timezone.utc).year
            assert year == 2017

    def test_reddit_sections_are_subreddits(self, world):
        sections = {m.section
                    for m in world.forums[REDDIT].iter_messages()}
        assert all(s.startswith("r/") for s in sections)
        assert "r/DarkNetMarkets" in sections

    def test_dark_sections_are_boards(self, world):
        sections = {m.section for m in world.forums[TMG].iter_messages()}
        assert "vendor threads" in sections

    def test_threads_cover_messages(self, world):
        forum = world.forums[DM]
        in_threads = {mid for t in forum.threads.values()
                      for mid in t.message_ids}
        all_ids = {m.message_id for m in forum.iter_messages()}
        assert in_threads == all_ids

    def test_disclosures_annotated(self, world):
        n = sum(1 for m in world.forums[REDDIT].iter_messages()
                if m.metadata.get("disclosures"))
        assert n > 0

    def test_linked_personas_share_habits(self, world):
        link = world.links[0]
        persona = world.persona_of(link.forum_a, link.alias_a)
        same = world.persona_of(link.forum_b, link.alias_b)
        assert persona is same  # one person, two aliases

    def test_tmg_messages_longer_on_average(self, world):
        def mean_words(forum):
            lengths = [len(m.text.split())
                       for m in world.forums[forum].iter_messages()]
            return np.mean(lengths)

        assert mean_words(TMG) > mean_words(DM)
