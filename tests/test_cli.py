"""Tests for the darklight command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.forums.storage import load_forum, load_world


@pytest.fixture(scope="module")
def generated_world(tmp_path_factory):
    out = tmp_path_factory.mktemp("world")
    code = main([
        "generate", "--out", str(out), "--seed", "3",
        "--reddit-users", "12", "--tmg-users", "8", "--dm-users", "6",
        "--tmg-dm-overlap", "2", "--reddit-dark-overlap", "2",
    ])
    assert code == 0
    return out


class TestGenerate:
    def test_three_forum_files(self, generated_world):
        forums = load_world(generated_world)
        assert set(forums) == {"reddit", "tmg", "dm"}

    def test_forums_populated(self, generated_world):
        forums = load_world(generated_world)
        assert all(f.n_messages > 0 for f in forums.values())


class TestPolish:
    def test_polish_roundtrip(self, generated_world, tmp_path,
                              capsys):
        out = tmp_path / "polished.jsonl"
        code = main(["polish",
                     "--input", str(generated_world / "tmg.jsonl"),
                     "--output", str(out)])
        assert code == 0
        polished = load_forum(out)
        raw = load_forum(generated_world / "tmg.jsonl")
        assert polished.n_messages <= raw.n_messages
        captured = capsys.readouterr().out
        assert "kept_messages" in captured


class TestProfile:
    def test_profile_known_alias(self, generated_world, capsys):
        forums = load_world(generated_world)
        alias = next(iter(forums["reddit"].users))
        code = main(["profile",
                     "--forum",
                     str(generated_world / "reddit.jsonl"),
                     "--alias", alias])
        assert code == 0
        assert "PROFILE" in capsys.readouterr().out

    def test_profile_unknown_alias_fails(self, generated_world,
                                         capsys):
        code = main(["profile",
                     "--forum",
                     str(generated_world / "reddit.jsonl"),
                     "--alias", "does-not-exist"])
        assert code == 1

    def test_dark_alias_flag(self, generated_world, capsys):
        forums = load_world(generated_world)
        alias = next(iter(forums["reddit"].users))
        main(["profile",
              "--forum", str(generated_world / "reddit.jsonl"),
              "--alias", alias, "--dark-alias", "shadow9"])
        assert "shadow9" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
