"""Tests for the ``darklight eval episodes`` subcommand."""

import json

import pytest

from repro.cli import main

EPISODE_ARGS = ["eval", "episodes", "--seed", "3", "--n-way", "4",
                "--episodes-per-cell", "2", "--buckets", "300"]


@pytest.fixture(scope="module")
def episode_run(tmp_path_factory):
    """One small CLI episode run: returns (report, manifest bytes)."""
    out = tmp_path_factory.mktemp("episodes")
    report_path = out / "report.json"
    manifest_path = out / "manifest.json"
    code = main(EPISODE_ARGS + ["--out", str(report_path),
                                "--manifest-out", str(manifest_path)])
    assert code == 0
    report = json.loads(report_path.read_text(encoding="utf-8"))
    return report, manifest_path.read_bytes()


class TestEpisodesCommand:
    def test_report_shape(self, episode_run):
        report, _ = episode_run
        assert report["variant"] == "full"
        assert report["features"] == "stylometry,activity"
        assert len(report["manifest_sha256"]) == 64
        assert set(report["cells"]) == {"dark-dark/w300",
                                        "open-dark/w300"}
        for metrics in report["cells"].values():
            assert metrics["n_episodes"] == 2.0

    def test_per_cell_table_printed(self, capsys):
        code = main(EPISODE_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "episodes: 4" in out
        assert "dark-dark/w300" in out and "auc" in out

    def test_same_seed_is_byte_identical(self, episode_run, tmp_path):
        """The acceptance criterion: running twice with the same seed
        produces identical manifests and identical scores."""
        report, manifest = episode_run
        report_path = tmp_path / "report.json"
        manifest_path = tmp_path / "manifest.json"
        code = main(EPISODE_ARGS + ["--out", str(report_path),
                                    "--manifest-out",
                                    str(manifest_path)])
        assert code == 0
        assert manifest_path.read_bytes() == manifest
        assert json.loads(report_path.read_text(encoding="utf-8")) \
            == report

    def test_other_seed_other_manifest(self, episode_run, tmp_path):
        _, manifest = episode_run
        manifest_path = tmp_path / "manifest.json"
        args = list(EPISODE_ARGS)
        args[args.index("--seed") + 1] = "4"
        code = main(args + ["--manifest-out", str(manifest_path)])
        assert code == 0
        assert manifest_path.read_bytes() != manifest

    def test_json_output(self, capsys):
        code = main(EPISODE_ARGS + ["--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["variant"] == "full"
        assert len(document["outcomes"]) == 4

    def test_bad_features_spec_fails(self, capsys):
        code = main(EPISODE_ARGS + ["--features", "telepathy"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestGoldenGateCli:
    def test_check_against_fresh_golden(self, tmp_path, capsys):
        """--write-golden then --check on the same variant passes;
        --check with the stage1 variant exits nonzero."""
        golden = tmp_path / "golden.json"
        code = main(["eval", "episodes", "--write-golden",
                     str(golden)])
        assert code == 0
        assert golden.exists()
        capsys.readouterr()
        code = main(["eval", "episodes", "--check", str(golden)])
        assert code == 0
        assert "golden check passed" in capsys.readouterr().out
        code = main(["eval", "episodes", "--check", str(golden),
                     "--variant", "stage1"])
        assert code == 1
        err = capsys.readouterr().err
        assert "golden check FAILED" in err
