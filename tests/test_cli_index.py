"""CLI tests: index build/verify/info and link --index/--deadline-ms.

A snapshot built once by ``index build`` is linked against via
``link --index`` and must print exactly what ``link --known`` prints
for the same world — the cold-start contract, end to end through the
CLI.
"""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("index-world")
    code = main([
        "generate", "--out", str(out), "--seed", "17",
        "--reddit-users", "26", "--tmg-users", "12", "--dm-users", "10",
        "--tmg-dm-overlap", "4", "--reddit-dark-overlap", "0",
    ])
    assert code == 0
    return out


@pytest.fixture(scope="module")
def snapshot(world_dir, tmp_path_factory):
    snap = tmp_path_factory.mktemp("index-snap") / "dm.snap"
    code = main(["index", "build",
                 "--known", str(world_dir / "dm.jsonl"),
                 "--out", str(snap)])
    assert code == 0
    assert snap.exists()
    return snap


class TestIndexBuild:
    def test_build_reports_summary(self, world_dir, snapshot,
                                   capsys):
        # Rebuild so this test owns its own captured output.
        out = snapshot.with_name("again.snap")
        code = main(["index", "build",
                     "--known", str(world_dir / "dm.jsonl"),
                     "--out", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "wrote" in captured
        assert "sections" in captured
        assert "known aliases" in captured
        assert out.stat().st_size > 0

    def test_rebuild_is_deterministic(self, snapshot):
        again = snapshot.with_name("again.snap")
        assert again.read_bytes() == snapshot.read_bytes()


class TestIndexVerify:
    def test_pristine_snapshot_verifies(self, snapshot, capsys):
        code = main(["index", "verify", str(snapshot)])
        captured = capsys.readouterr()
        assert code == 0
        assert "sections verified" in captured.out
        assert "DAMAGED" not in captured.out

    def test_corrupted_snapshot_fails(self, snapshot, tmp_path,
                                      capsys):
        from repro.resilience.snapshot import snapshot_info

        blob = bytearray(snapshot.read_bytes())
        section = snapshot_info(snapshot)["sections"][-1]
        start = snapshot_info(snapshot)["expected_bytes"] \
            - section["nbytes"]
        blob[start + section["nbytes"] // 2] ^= 0xFF
        bad = tmp_path / "bad.snap"
        bad.write_bytes(bytes(blob))
        code = main(["index", "verify", str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "DAMAGED" in captured.out
        assert "damaged section" in captured.err

    def test_garbage_file_is_typed_error(self, tmp_path, capsys):
        junk = tmp_path / "junk.snap"
        junk.write_bytes(b"not a snapshot at all")
        code = main(["index", "verify", str(junk)])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestIndexInfo:
    def test_info_prints_header(self, snapshot, capsys):
        code = main(["index", "info", str(snapshot)])
        out = capsys.readouterr().out
        assert code == 0
        assert "format_version: 1" in out
        assert "algo: alias-linker" in out
        assert "config_digest:" in out
        assert "config.threshold:" in out
        assert "sections:" in out


class TestLinkWithIndex:
    def _link_known(self, world_dir, capsys):
        code = main(["link",
                     "--known", str(world_dir / "dm.jsonl"),
                     "--unknown", str(world_dir / "tmg.jsonl")])
        out = capsys.readouterr().out
        assert code == 0
        return out

    def _link_index(self, world_dir, snapshot, capsys, *extra):
        code = main(["link",
                     "--index", str(snapshot),
                     "--unknown", str(world_dir / "tmg.jsonl"),
                     *extra])
        out = capsys.readouterr().out
        assert code == 0
        return out

    def test_cold_load_output_identical(self, world_dir, snapshot,
                                        capsys):
        warm = self._link_known(world_dir, capsys)
        cold = self._link_index(world_dir, snapshot, capsys)
        assert cold == warm

    def test_threshold_override(self, world_dir, snapshot, capsys):
        out = self._link_index(world_dir, snapshot, capsys,
                               "--threshold", "1.0")
        assert "pairs above threshold 1.0: 0" in out

    def test_known_and_index_are_exclusive(self, world_dir, snapshot):
        with pytest.raises(SystemExit):
            main(["link",
                  "--known", str(world_dir / "dm.jsonl"),
                  "--index", str(snapshot),
                  "--unknown", str(world_dir / "tmg.jsonl")])

    def test_neither_source_rejected(self, world_dir):
        with pytest.raises(SystemExit):
            main(["link",
                  "--unknown", str(world_dir / "tmg.jsonl")])


class TestLinkDeadline:
    def test_strict_deadline_fails_loudly(self, world_dir, snapshot,
                                          capsys):
        code = main(["link",
                     "--index", str(snapshot),
                     "--unknown", str(world_dir / "tmg.jsonl"),
                     "--deadline-ms", "0.001"])
        captured = capsys.readouterr()
        assert code == 1
        assert "deadline" in captured.err

    def test_degraded_ok_quarantines_instead(self, world_dir,
                                             snapshot, capsys):
        code = main(["link",
                     "--index", str(snapshot),
                     "--unknown", str(world_dir / "tmg.jsonl"),
                     "--deadline-ms", "0.001", "--degraded-ok"])
        captured = capsys.readouterr()
        assert code == 0
        assert "skipped unknowns:" in captured.out
        assert "[deadline]" in captured.out

    def test_generous_deadline_matches_no_deadline(self, world_dir,
                                                   snapshot, capsys):
        plain = main(["link",
                      "--index", str(snapshot),
                      "--unknown", str(world_dir / "tmg.jsonl")])
        out_plain = capsys.readouterr().out
        rich = main(["link",
                     "--index", str(snapshot),
                     "--unknown", str(world_dir / "tmg.jsonl"),
                     "--deadline-ms", "600000", "--degraded-ok"])
        out_rich = capsys.readouterr().out
        assert plain == rich == 0
        assert out_plain == out_rich


class TestBuildJobs:
    def test_jobs_flag_and_manifest_provenance(self, world_dir,
                                               snapshot, tmp_path,
                                               capsys):
        """--jobs N builds an identical snapshot and records the build
        parallelism + wall time in the run manifest."""
        import json

        from repro.obs.manifest import manifest_path_for

        out = tmp_path / "jobs.snap"
        trace = tmp_path / "trace.json"
        code = main(["--trace", str(trace), "index", "build",
                     "--known", str(world_dir / "dm.jsonl"),
                     "--out", str(out), "--jobs", "2"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "2 build job(s)" in captured
        # Parallelism only reorders the build; the snapshot bytes
        # cannot change.
        assert out.read_bytes() == snapshot.read_bytes()

        manifest = json.loads(
            manifest_path_for(trace).read_text())
        config = manifest["config"]
        assert config["build_jobs"] == 2
        assert config["build_wall_s"] > 0

    def test_jobs_must_be_positive(self, world_dir, tmp_path,
                                   capsys):
        code = main(["index", "build",
                     "--known", str(world_dir / "dm.jsonl"),
                     "--out", str(tmp_path / "bad.snap"),
                     "--jobs", "0"])
        assert code != 0
        assert "build_jobs" in capsys.readouterr().err
