"""End-to-end CLI tests: calibrate and link subcommands.

These exercise the full polish → refine → link path through the CLI on
a small generated world (module-scoped: built once).
"""

import re

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-world")
    code = main([
        "generate", "--out", str(out), "--seed", "17",
        "--reddit-users", "26", "--tmg-users", "12", "--dm-users", "10",
        "--tmg-dm-overlap", "4", "--reddit-dark-overlap", "0",
    ])
    assert code == 0
    return out


class TestCalibrateCommand:
    def test_calibrate_reports_threshold(self, world_dir, capsys):
        code = main(["calibrate",
                     "--forum", str(world_dir / "reddit.jsonl"),
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0, out
        match = re.search(r"threshold: (\d\.\d+)", out)
        assert match, out
        assert 0.0 < float(match.group(1)) <= 1.0
        assert "precision:" in out
        assert "recall:" in out
        assert "AUC:" in out

    def test_calibrate_respects_target_recall(self, world_dir,
                                              capsys):
        code = main(["calibrate",
                     "--forum", str(world_dir / "reddit.jsonl"),
                     "--seed", "1", "--target-recall", "0.5"])
        out = capsys.readouterr().out
        assert code == 0, out
        match = re.search(r"recall:\s+(\d+\.\d+)%", out)
        assert match
        assert float(match.group(1)) >= 50.0


class TestLinkCommand:
    def test_link_outputs_pairs(self, world_dir, capsys):
        code = main(["link",
                     "--known", str(world_dir / "dm.jsonl"),
                     "--unknown", str(world_dir / "tmg.jsonl"),
                     "--threshold", "0.9"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "known aliases after refinement" in out
        assert "pairs above threshold" in out
        # at threshold 0.9 on synthetic scores some pairs must appear
        assert re.search(r"tmg/\S+ -> dm/\S+ \(score 0\.9", out)

    def test_link_with_batching(self, world_dir, capsys):
        code = main(["link",
                     "--known", str(world_dir / "dm.jsonl"),
                     "--unknown", str(world_dir / "tmg.jsonl"),
                     "--threshold", "0.9", "--batch-size", "15"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "pairs above threshold" in out

    def test_batch_size_below_k_fails_cleanly(self, world_dir,
                                              capsys):
        # k defaults to 10; B must exceed it (§IV-J)
        code = main(["link",
                     "--known", str(world_dir / "dm.jsonl"),
                     "--unknown", str(world_dir / "tmg.jsonl"),
                     "--threshold", "0.9", "--batch-size", "6"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err

    def test_link_impossible_threshold_outputs_nothing(self, world_dir,
                                                       capsys):
        code = main(["link",
                     "--known", str(world_dir / "dm.jsonl"),
                     "--unknown", str(world_dir / "tmg.jsonl"),
                     "--threshold", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "pairs above threshold 1.0: 0" in out
