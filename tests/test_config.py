"""Tests for paper-wide configuration (repro.config)."""

import pytest

from repro import config
from repro.errors import ConfigurationError


class TestPaperConstants:
    def test_polishing_constants(self):
        assert config.MIN_MESSAGE_WORDS == 10
        assert config.MIN_DISTINCT_WORD_RATIO == 0.5
        assert config.MAX_WORD_LENGTH == 34

    def test_refinement_constants(self):
        assert config.MIN_TIMESTAMPS == 30
        assert config.WORDS_PER_ALIAS == 1500
        assert config.ALTER_EGO_MIN_WORDS == 3000
        assert config.ALTER_EGO_MIN_TIMESTAMPS == 60

    def test_algorithm_constants(self):
        assert config.DEFAULT_K == 10
        assert config.PAPER_THRESHOLD == 0.4190
        assert config.DEFAULT_BATCH_SIZE == 100


class TestFeatureBudget:
    def test_table_ii_reduction_column(self):
        budget = config.SPACE_REDUCTION_FEATURES
        assert budget.word_ngrams == 60_000
        assert budget.char_ngrams == 30_000
        assert budget.punctuation == 11
        assert budget.digits == 10
        assert budget.special_chars == 21
        assert budget.activity_bins == 24

    def test_table_ii_final_column(self):
        budget = config.FINAL_FEATURES
        assert budget.word_ngrams == 50_000
        assert budget.char_ngrams == 15_000

    def test_totals(self):
        budget = config.FINAL_FEATURES
        assert budget.text_total == 50_000 + 15_000 + 11 + 10 + 21
        assert budget.total == budget.text_total + 24

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            config.FeatureBudget(word_ngrams=-1)

    def test_zero_budget_allowed(self):
        budget = config.FeatureBudget(word_ngrams=0, char_ngrams=0)
        assert budget.text_total == 42


class TestPipelineConfig:
    def test_defaults_match_paper(self):
        cfg = config.PipelineConfig()
        assert cfg.k == 10
        assert cfg.words_per_alias == 1500
        assert cfg.threshold == 0.4190
        assert cfg.use_activity
        assert cfg.use_lemmatization

    @pytest.mark.parametrize("kwargs", [
        {"k": 0},
        {"words_per_alias": 0},
        {"threshold": -0.1},
        {"threshold": 1.1},
        {"min_timestamps": -1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            config.PipelineConfig(**kwargs)


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert config.bench_scale() == "small"

    def test_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "PAPER")
        assert config.bench_scale() == "paper"

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ConfigurationError):
            config.bench_scale()


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in ("ConfigurationError", "InsufficientDataError",
                     "DatasetError", "ScrapeError", "NotFittedError",
                     "LanguageDetectionError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_catchable_as_family(self):
        from repro.errors import ConfigurationError, ReproError

        with pytest.raises(ReproError):
            raise ConfigurationError("x")
