"""Integration tests for the end-to-end pipeline (repro.pipeline)."""

import pytest

from repro.config import PipelineConfig
from repro.errors import InsufficientDataError
from repro.pipeline import LinkingPipeline


class TestPrepareForum:
    def test_prepare_reports(self, world):
        pipeline = LinkingPipeline(
            PipelineConfig(words_per_alias=600))
        docs = pipeline.prepare_forum(world.forums["reddit"])
        assert pipeline.report.polish_known is not None
        assert pipeline.report.refined_known == len(docs)
        assert len(docs) > 0

    def test_utc_alignment_applied(self, world):
        """TMG displays UTC+2; refined activity profiles must be
        aligned back, i.e. building with and without the forum offset
        must differ."""
        import numpy as np

        from repro.core.documents import refine_forum
        from repro.textproc.cleaning import polish_forum

        tmg = world.forums["tmg"]
        polished, _ = polish_forum(tmg)
        aligned = refine_forum(polished, words_per_alias=600,
                               utc_shift_hours=-2)
        naive = refine_forum(polished, words_per_alias=600,
                             utc_shift_hours=0)
        by_id = {d.doc_id: d for d in naive}
        shifted_any = any(
            not np.allclose(doc.activity, by_id[doc.doc_id].activity)
            for doc in aligned if doc.doc_id in by_id)
        assert shifted_any


class TestLinkForums:
    def test_cross_forum_linking_finds_ground_truth(self, world):
        """The headline integration test: dark-dark linking recovers
        a decent share of the planted TMG<->DM pairs."""
        pipeline = LinkingPipeline(
            PipelineConfig(words_per_alias=600, threshold=0.0))
        result = pipeline.link_forums(world.forums["dm"],
                                      world.forums["tmg"])
        truth = world.linked_aliases("tmg", "dm")
        evaluable = [
            m for m in result.matches
            if m.unknown_id.split("/", 1)[1] in truth
        ]
        assert evaluable, "no linked alias survived refinement"
        correct = sum(
            truth[m.unknown_id.split("/", 1)[1]]
            == m.candidate_id.split("/", 1)[1]
            for m in evaluable)
        assert correct / len(evaluable) > 0.5

    def test_empty_known_raises(self, world):
        pipeline = LinkingPipeline()
        with pytest.raises(InsufficientDataError):
            pipeline.link_documents([], [])

    def test_batched_pipeline_runs(self, reddit_alter_egos):
        pipeline = LinkingPipeline(
            PipelineConfig(words_per_alias=600, threshold=0.0),
            batch_size=15)
        result = pipeline.link_documents(
            reddit_alter_egos.originals,
            reddit_alter_egos.alter_egos[:3])
        assert len(result.matches) == 3
