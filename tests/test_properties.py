"""Property-based tests (hypothesis) on core invariants."""

import string
from collections import Counter

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import ngrams
from repro.core.calendars import easter_sunday, is_weekend
from repro.core.similarity import cosine_similarity, rank_of, top_k
from repro.core.tfidf import TfidfModel, l2_normalize_rows
from repro.eval.metrics import pr_curve
from repro.forums.models import DAY
from repro.synth.rng import zipf_weights
from repro.textproc import patterns
from repro.textproc.lemmatizer import lemmatize_word
from repro.textproc.tokenizer import (
    count_words,
    distinct_word_ratio,
    word_tokens,
)

# -- strategies -------------------------------------------------------------

text_strategy = st.text(
    alphabet=string.ascii_letters + string.digits + " .,!?:;'\"-@#\n",
    max_size=400)

word_strategy = st.text(alphabet=string.ascii_lowercase, min_size=1,
                        max_size=15)


# -- tokenizer --------------------------------------------------------------

class TestTokenizerProperties:
    @given(text_strategy)
    def test_count_matches_word_tokens(self, text):
        assert count_words(text) == len(word_tokens(text))

    @given(text_strategy)
    def test_distinct_ratio_in_unit_interval(self, text):
        assert 0.0 <= distinct_word_ratio(text) <= 1.0

    @given(text_strategy)
    def test_tokens_are_substrings(self, text):
        from repro.textproc.tokenizer import iter_tokens

        for token in iter_tokens(text):
            assert token.text in text

    @given(text_strategy)
    def test_tokenization_deterministic(self, text):
        from repro.textproc.tokenizer import tokenize

        assert tokenize(text) == tokenize(text)


# -- lemmatizer -------------------------------------------------------------

class TestLemmatizerProperties:
    @given(word_strategy)
    def test_lemma_nonempty(self, word):
        assert lemmatize_word(word)

    @given(word_strategy)
    def test_lemma_idempotent(self, word):
        once = lemmatize_word(word)
        assert lemmatize_word(once) == once

    @given(word_strategy)
    def test_lemma_never_longer_by_much(self, word):
        # the only growth is a restored silent 'e'
        assert len(lemmatize_word(word)) <= len(word) + 1


# -- patterns ---------------------------------------------------------------

class TestPatternProperties:
    @given(text_strategy)
    def test_collapse_whitespace_no_runs(self, text):
        out = patterns.collapse_whitespace(text)
        assert "  " not in out
        assert out == out.strip()

    @given(text_strategy)
    def test_mask_emails_removes_all(self, text):
        out = patterns.mask_emails(text)
        assert patterns.EMAIL_RE.search(out.replace(
            patterns.EMAIL_TAG, " ")) is None

    @given(text_strategy, st.integers(min_value=1, max_value=50))
    def test_strip_long_words_bound(self, text, limit):
        out = patterns.strip_long_words(text, limit)
        assert all(len(w) <= limit for w in out.split())


# -- ngrams -----------------------------------------------------------------

class TestNgramProperties:
    @given(st.text(alphabet=string.ascii_lowercase + " ", max_size=80),
           st.integers(min_value=1, max_value=5))
    def test_char_counts_match_counter(self, text, order):
        codes = ngrams.char_ngram_codes(text, orders=(order,))
        unique, counts = ngrams.count_codes(codes)
        naive = Counter(text[i:i + order]
                        for i in range(len(text) - order + 1))
        decoded = {ngrams.decode_char_code(int(c)): int(n)
                   for c, n in zip(unique, counts)}
        assert decoded == {k: v for k, v in naive.items()}

    @given(st.lists(word_strategy, max_size=40))
    def test_word_occurrences_total(self, tokens):
        vocab = ngrams.WordVocab()
        codes = ngrams.word_ngram_codes(tokens, vocab, orders=(1, 2))
        expected = len(tokens) + max(0, len(tokens) - 1)
        assert codes.size == expected

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=9)), max_size=30))
    def test_merge_preserves_total(self, pairs):
        profiles = []
        for code, count in pairs:
            profiles.append(ngrams.CodeCounts(
                np.array([code], dtype=np.uint64),
                np.array([count], dtype=np.int64)))
        merged = ngrams.merge_counts(profiles)
        assert merged.total == sum(c for _, c in pairs)

    @given(st.integers(min_value=0, max_value=50))
    def test_select_top_bounded(self, budget):
        corpus = ngrams.CodeCounts(
            np.arange(20, dtype=np.uint64),
            np.arange(1, 21, dtype=np.int64))
        selected = ngrams.select_top(corpus, budget)
        assert selected.size == min(budget, 20)
        assert np.all(np.diff(selected.astype(np.int64)) > 0)


# -- tfidf / similarity -----------------------------------------------------

class TestLinearAlgebraProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_l2_rows_unit_or_zero(self, rows, cols, seed):
        from scipy import sparse

        rng = np.random.default_rng(seed)
        dense = rng.random((rows, cols)) * (rng.random((rows, cols))
                                            > 0.5)
        out = l2_normalize_rows(sparse.csr_matrix(dense))
        norms = np.sqrt(np.asarray(
            out.multiply(out).sum(axis=1))).ravel()
        for norm in norms:
            assert norm == pytest.approx(1.0) or norm == 0.0

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_cosine_bounded_and_symmetric(self, n, m, seed):
        from scipy import sparse

        rng = np.random.default_rng(seed)
        a = sparse.csr_matrix(rng.random((n, m)))
        sims = cosine_similarity(a, a, assume_normalized=False)
        assert np.all(sims <= 1.0 + 1e-9)
        assert np.all(sims >= -1e-9)
        assert np.allclose(sims, sims.T)
        assert np.allclose(np.diag(sims), 1.0)

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_top_k_values_descending(self, k, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random((3, 25))
        _, values = top_k(scores, k)
        for row in values:
            assert np.all(np.diff(row) <= 1e-12)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_rank_of_consistent_with_sort(self, seed):
        rng = np.random.default_rng(seed)
        row = rng.random(20)
        assume(len(np.unique(row)) == 20)
        order = np.argsort(-row)
        for rank, idx in enumerate(order, start=1):
            assert rank_of(row, int(idx)) == rank


# -- metrics ----------------------------------------------------------------

class TestMetricProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1),
                              st.booleans()),
                    min_size=1, max_size=60))
    def test_pr_curve_bounds(self, pairs):
        scores = [s for s, _ in pairs]
        labels = [l for _, l in pairs]
        assume(any(labels))
        curve = pr_curve(scores, labels)
        assert np.all(curve.precisions <= 1.0)
        assert np.all(curve.precisions >= 0.0)
        assert np.all(curve.recalls <= 1.0)
        assert np.all(np.diff(curve.recalls) >= -1e-12)
        assert 0.0 <= curve.auc() <= 1.0 + 1e-9


# -- calendars / rng --------------------------------------------------------

class TestCalendarProperties:
    @given(st.integers(min_value=1900, max_value=2200))
    def test_easter_in_valid_range(self, year):
        date = easter_sunday(year)
        assert (date.month, date.day) >= (3, 22)
        assert (date.month, date.day) <= (4, 25)
        assert date.weekday() == 6  # Sunday

    @given(st.integers(min_value=0, max_value=10_000))
    def test_weekend_period_seven_days(self, day):
        ts = day * DAY + 12 * 3600
        assert is_weekend(ts) == is_weekend(ts + 7 * DAY)


class TestRngProperties:
    @given(st.integers(min_value=1, max_value=500))
    def test_zipf_weights_sum_to_one(self, n):
        assert zipf_weights(n).sum() == pytest.approx(1.0)
