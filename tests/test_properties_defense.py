"""Property-based tests for the defense and ground-truth modules."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.documents import AliasDocument
from repro.defense.obfuscation import StyleObfuscator
from repro.eval.groundtruth import classify_pair
from repro.synth import evidence as ev

text_strategy = st.text(
    alphabet=string.ascii_letters + " .,!?:;'\n", max_size=200)

#: Random disclosure dicts over a few kinds.
fact_strategy = st.dictionaries(
    keys=st.sampled_from([ev.AGE, ev.CITY, ev.RELIGION, ev.DRUG,
                          ev.HOBBY, ev.EMAIL, ev.REFERRAL_LINK]),
    values=st.lists(st.sampled_from(
        ["20", "34", "Miami", "Berlin", "Atheist", "Christian",
         "dmt", "yoga", "x@pm.com", "ref1"]),
        min_size=1, max_size=2).map(list),
    max_size=4,
)


class TestObfuscatorProperties:
    @given(text_strategy)
    @settings(max_examples=60)
    def test_idempotent(self, text):
        obfuscator = StyleObfuscator()
        once = obfuscator.obfuscate_text(text)
        assert obfuscator.obfuscate_text(once) == once

    @given(text_strategy)
    @settings(max_examples=60)
    def test_output_fully_lowercase(self, text):
        out = StyleObfuscator().obfuscate_text(text)
        assert out == out.lower()

    @given(text_strategy)
    @settings(max_examples=60)
    def test_no_exclamation_or_question_marks(self, text):
        out = StyleObfuscator().obfuscate_text(text)
        assert "!" not in out and "?" not in out


def _doc(doc_id, alias, facts):
    return AliasDocument(
        doc_id=doc_id, alias=alias, forum="f", text="", words=(),
        timestamps=(), activity=None,
        metadata={"disclosures": facts})


class TestClassifyPairProperties:
    @given(fact_strategy, fact_strategy)
    @settings(max_examples=100)
    def test_verdict_symmetric(self, facts_a, facts_b):
        a = _doc("a", "aliasA", facts_a)
        b = _doc("b", "aliasB", facts_b)
        assert classify_pair(a, b).verdict == \
            classify_pair(b, a).verdict

    @given(fact_strategy)
    @settings(max_examples=60)
    def test_self_comparison_never_false(self, facts):
        """A document compared against an identical twin can never be
        graded False — it contradicts nothing."""
        a = _doc("a", "aliasA", facts)
        b = _doc("b", "aliasB", facts)
        assert classify_pair(a, b).verdict != "False"

    @given(fact_strategy, fact_strategy)
    @settings(max_examples=100)
    def test_verdict_is_valid(self, facts_a, facts_b):
        from repro.eval.groundtruth import VERDICTS

        a = _doc("a", "aliasA", facts_a)
        b = _doc("b", "aliasB", facts_b)
        assert classify_pair(a, b).verdict in VERDICTS

    @given(fact_strategy, fact_strategy)
    @settings(max_examples=100)
    def test_same_alias_always_true(self, facts_a, facts_b):
        a = _doc("a", "SameBrand", facts_a)
        b = _doc("b", "SameBrand", facts_b)
        assert classify_pair(a, b).verdict == "True"
