"""Property tests of the episode harness: seed-stability, pre-PR
bit-identity with the structure family disabled, and order invariance.
"""

import json
import random
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAPER_THRESHOLD, FeatureConfig
from repro.core.documents import AliasDocument
from repro.core.linker import AliasLinker
from repro.eval.episodes import (
    EpisodeConfig,
    EpisodePool,
    manifest_bytes,
    run_episodes,
    sample_episodes,
    sample_from_pools,
)


def _make_docs(n, seed, prefix):
    rng = np.random.default_rng(seed)
    vocab = np.array([f"tok{i:04d}" for i in range(800)])
    docs = []
    for i in range(n):
        start = (i * 37) % 500
        words = tuple(rng.choice(vocab[start:start + 300], size=150))
        activity = rng.random(24)
        docs.append(AliasDocument(
            doc_id=f"{prefix}{i}", alias=f"{prefix}{i}", forum=prefix,
            text=" ".join(words), words=words, timestamps=(),
            activity=activity / activity.sum()))
    return docs


POOL = EpisodePool(
    drift="dark-dark", bucket=200,
    known=tuple(_make_docs(20, seed=11, prefix="k")),
    unknown=tuple(_make_docs(10, seed=12, prefix="u")),
    truth={f"u{i}": f"k{i}" for i in range(10)})


class TestSeedStability:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_manifest_bytes(self, seed):
        config = EpisodeConfig(seed=seed, n_way=4,
                               episodes_per_cell=5, buckets=(200,))
        first = manifest_bytes(sample_from_pools([POOL], config),
                               config)
        second = manifest_bytes(sample_from_pools([POOL], config),
                                config)
        assert first == second

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_panels_respect_n_way(self, n_way):
        config = EpisodeConfig(seed=3, n_way=n_way,
                               episodes_per_cell=5, buckets=(200,))
        for episode in sample_from_pools([POOL], config):
            assert 2 <= len(episode.candidates) <= n_way

    def test_independent_worlds_same_manifest(self, world,
                                              episode_suite):
        """Two separately built worlds with the same seed sample the
        same suite — the manifest proves runs are comparable."""
        from repro.synth.world import small_world

        episodes, config = episode_suite
        fresh = sample_episodes(small_world(seed=7), config)
        assert manifest_bytes(fresh, config) \
            == manifest_bytes(episodes, config)


class TestPrePRBitIdentity:
    def test_structure_off_matches_direct_linker(self, episode_suite):
        """With the default families the episode runner is exactly the
        pre-existing two-stage linker: per-panel fit + link, scores
        bit-for-bit equal."""
        episodes, config = episode_suite
        assert config.features == FeatureConfig()
        report = run_episodes(episodes, features=config.features)
        by_id = {o.episode_id: o for o in report.outcomes}
        for episode in episodes:
            linker = AliasLinker(k=len(episode.candidates),
                                 threshold=PAPER_THRESHOLD,
                                 use_activity=True)
            linker.fit(list(episode.candidates))
            result = linker.link([episode.unknown])
            match = result.matches[0]
            outcome = by_id[episode.episode_id]
            assert outcome.best_id == match.candidate_id
            assert outcome.best_score == float(match.score)
            assert outcome.accepted == match.accepted


class TestOrderInvariance:
    def test_episode_order_shuffle_is_invisible(self, episode_suite):
        """Scores do not depend on the order episodes are run in (the
        shared cache is pre-warmed in canonical order)."""
        episodes, config = episode_suite
        shuffled = list(episodes)
        random.Random(41).shuffle(shuffled)
        assert [e.episode_id for e in shuffled] \
            != [e.episode_id for e in episodes]
        straight = run_episodes(episodes, features=config.features)
        permuted = run_episodes(shuffled, features=config.features)
        a = sorted((o.to_dict() for o in straight.outcomes),
                   key=lambda o: o["episode_id"])
        b = sorted((o.to_dict() for o in permuted.outcomes),
                   key=lambda o: o["episode_id"])
        assert json.dumps(a, sort_keys=True) \
            == json.dumps(b, sort_keys=True)
        assert straight.cells == permuted.cells

    def test_stage1_order_shuffle_is_invisible(self, episode_suite):
        episodes, config = episode_suite
        shuffled = list(reversed(episodes))
        straight = run_episodes(episodes, variant="stage1")
        permuted = run_episodes(shuffled, variant="stage1")
        assert straight.cells == permuted.cells

    def test_features_spec_round_trip(self):
        for spec in ("stylometry", "stylometry,activity",
                     "stylometry,activity,structure"):
            assert FeatureConfig.from_spec(spec).spec() == spec

    def test_config_features_thread_through(self):
        config = EpisodeConfig(
            features=FeatureConfig.from_spec("stylometry"))
        assert config.to_dict()["features"] == "stylometry"
        other = replace(config, seed=99)
        assert other.features == config.features
