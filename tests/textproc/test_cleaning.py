"""Unit tests for the 12-step polishing pipeline (repro.textproc.cleaning)."""

import pytest

from repro.forums.models import Forum, Message, UserRecord
from repro.textproc.cleaning import (
    CleaningConfig,
    MessagePolisher,
    is_bot_alias,
    dedup_key,
    polish_forum,
    polish_messages,
)

GOOD = ("I really think this vendor deserves more attention because "
        "the quality has been consistent for months")


def _msg(i, author, text, forum="f", section="s", ts=1_500_000_000):
    return Message(message_id=f"m{i}", author=author, text=text,
                   timestamp=ts + i, forum=forum, section=section)


def _forum(messages):
    forum = Forum(name="f")
    for m in messages:
        forum.add_message(m)
    return forum


class TestBotDetection:
    @pytest.mark.parametrize("alias", ["botlord", "remindbot",
                                       "BotMaster", "tipBOT"])
    def test_bot_aliases_detected(self, alias):
        assert is_bot_alias(alias)

    @pytest.mark.parametrize("alias", ["abbot7", "robotics_fan",
                                       "botanical", "alice"])
    def test_non_bot_aliases_kept(self, alias):
        # only prefix/suffix count, per the paper's heuristic
        if alias in ("abbot7", "robotics_fan", "alice"):
            assert not is_bot_alias(alias)
        else:
            # 'botanical' starts with bot -> dropped (heuristic cost)
            assert is_bot_alias(alias)


class TestMessagePolisher:
    def test_good_message_survives(self):
        polisher = MessagePolisher()
        assert polisher.polish_text(GOOD) == GOOD

    def test_short_message_dropped(self):
        polisher = MessagePolisher()
        assert polisher.polish_text("totally agree with this") is None

    def test_low_diversity_dropped(self):
        polisher = MessagePolisher()
        spam = "buy cheap meds now " * 6
        assert polisher.polish_text(spam) is None

    def test_non_english_dropped(self):
        polisher = MessagePolisher()
        text = ("Creo que deberíamos esperar hasta mañana antes de "
                "decidir nada importante sobre este asunto")
        assert polisher.polish_text(text) is None

    def test_quote_removed_but_reply_kept(self):
        polisher = MessagePolisher()
        out = polisher.polish_text(f"> someone else said this\n{GOOD}")
        assert out == GOOD

    def test_url_normalized_inside_kept_message(self):
        polisher = MessagePolisher()
        out = polisher.polish_text(
            f"{GOOD} more at https://www.reddit.com/r/x/123?a=b")
        assert out is not None
        assert "reddit.com" in out
        assert "r/x/123" not in out

    def test_email_masked(self):
        polisher = MessagePolisher()
        out = polisher.polish_text(f"{GOOD} reach me at a@b.com")
        assert out is not None
        assert "_mail_" in out
        assert "a@b.com" not in out

    def test_pgp_removed(self):
        pgp = ("-----BEGIN PGP PUBLIC KEY BLOCK-----\nxyz\n"
               "-----END PGP PUBLIC KEY BLOCK-----")
        polisher = MessagePolisher()
        out = polisher.polish_text(f"{GOOD}\nmy PGP key:\n{pgp}")
        assert out is not None
        assert "PGP" not in out

    def test_emoji_removed(self):
        polisher = MessagePolisher()
        out = polisher.polish_text(f"{GOOD} 😀🔥")
        assert out is not None
        assert "😀" not in out

    def test_long_words_removed(self):
        polisher = MessagePolisher()
        out = polisher.polish_text(f"{GOOD} {'z' * 50}")
        assert out is not None
        assert "z" * 50 not in out

    def test_disabled_pipeline_passthrough(self):
        polisher = MessagePolisher(CleaningConfig(enabled=False))
        assert polisher.polish_text("short") == "short"


class TestDedupKey:
    def test_case_and_spacing_ignored(self):
        assert dedup_key("Buy NOW  please") == dedup_key("buy now please")

    def test_different_texts_differ(self):
        assert dedup_key("alpha beta") != dedup_key("alpha gamma")


class TestPolishMessages:
    def test_duplicates_removed(self):
        kept = polish_messages([GOOD, GOOD, GOOD.upper()])
        assert len(kept) == 1

    def test_order_preserved(self):
        other = ("Another perfectly reasonable english message about "
                 "the state of the community these days")
        kept = polish_messages([GOOD, other])
        assert kept == [GOOD, other]


class TestPolishForum:
    def test_bot_accounts_dropped(self):
        forum = _forum([_msg(1, "spambot", GOOD),
                        _msg(2, "alice", GOOD)])
        polished, report = polish_forum(forum)
        assert "spambot" not in polished.users
        assert "alice" in polished.users
        assert report.dropped_bot_accounts == 1

    def test_crosspost_deduplicated_across_sections(self):
        forum = _forum([
            _msg(1, "alice", GOOD, section="r/a"),
            _msg(2, "alice", GOOD, section="r/b"),
        ])
        polished, report = polish_forum(forum)
        assert len(polished.users["alice"].messages) == 1
        assert report.dropped_duplicates == 1

    def test_empty_users_removed(self):
        forum = _forum([_msg(1, "bob", "too short to keep")])
        polished, report = polish_forum(forum)
        assert polished.n_users == 0
        assert report.dropped_short == 1

    def test_report_accounting_consistent(self):
        forum = _forum([
            _msg(1, "alice", GOOD),
            _msg(2, "alice", "short msg"),
            _msg(3, "bob", GOOD + " extra words here"),
        ])
        polished, report = polish_forum(forum)
        dropped = (report.dropped_short + report.dropped_duplicates
                   + report.dropped_low_diversity
                   + report.dropped_non_english
                   + report.dropped_empty_after_cleaning)
        assert report.kept_messages + dropped == report.input_messages
        assert report.kept_users == polished.n_users

    def test_input_forum_untouched(self):
        forum = _forum([_msg(1, "alice", GOOD + " 😀")])
        polish_forum(forum)
        assert "😀" in forum.users["alice"].messages[0].text

    def test_timestamps_preserved(self):
        forum = _forum([_msg(1, "alice", GOOD)])
        polished, _ = polish_forum(forum)
        assert polished.users["alice"].messages[0].timestamp == \
            forum.users["alice"].messages[0].timestamp

    def test_world_polish_drops_noise(self, world, polished_reddit):
        # integration: polished world has strictly fewer messages
        raw = world.forums["reddit"]
        assert polished_reddit.n_messages < raw.n_messages
        assert polished_reddit.n_users <= raw.n_users
