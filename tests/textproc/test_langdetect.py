"""Unit tests for the language detector (repro.textproc.langdetect)."""

import pytest

from repro.errors import LanguageDetectionError
from repro.textproc.langdetect import (
    LanguageDetector,
    LanguageProfile,
    char_ngrams,
    default_detector,
    detect_language,
)


@pytest.fixture(scope="module")
def detector():
    return default_detector()


class TestDetection:
    @pytest.mark.parametrize("text,lang", [
        ("I think we should wait until tomorrow before we decide", "en"),
        ("Creo que deberíamos esperar hasta mañana antes de decidir",
         "es"),
        ("Je pense que nous devrions attendre jusqu'à demain", "fr"),
        ("Ich denke, wir sollten bis morgen warten, bevor wir "
         "entscheiden", "de"),
        ("Penso che dovremmo aspettare fino a domani prima di decidere",
         "it"),
        ("Acho que deveríamos esperar até amanhã antes de decidir",
         "pt"),
        ("Ik denk dat we tot morgen moeten wachten voordat we beslissen",
         "nl"),
        ("Myślę, że powinniśmy poczekać do jutra zanim zdecydujemy",
         "pl"),
        ("Jag tror att vi borde vänta till imorgon innan vi bestämmer",
         "sv"),
        ("Я думаю, что нам стоит подождать до завтра прежде чем решать",
         "ru"),
    ])
    def test_each_language_recognized(self, detector, text, lang):
        assert detector.detect(text).language == lang

    def test_forum_style_english(self, detector):
        text = ("tbh the vendor was legit, shipping took 3 days and "
                "the quality is exactly what i expected lol")
        assert detector.detect(text).language == "en"

    def test_confidence_in_unit_interval(self, detector):
        result = detector.detect(
            "this is clearly an english sentence about nothing")
        assert 0.0 < result.confidence <= 1.0

    def test_scores_cover_all_languages(self, detector):
        result = detector.detect("plain english text for scoring test")
        assert set(result.scores) == set(detector.languages)

    def test_too_short_raises(self, detector):
        with pytest.raises(LanguageDetectionError):
            detector.detect("ok")

    def test_symbols_only_raises(self, detector):
        with pytest.raises(LanguageDetectionError):
            detector.detect("!!! ??? 123 ...")

    def test_deterministic(self, detector):
        text = "short ambiguous text here for determinism check"
        first = detector.detect(text)
        second = detector.detect(text)
        assert first.language == second.language
        assert first.confidence == second.confidence


class TestIsEnglish:
    def test_english_accepted(self, detector):
        assert detector.is_english(
            "the package arrived on time and everything was fine")

    def test_german_rejected(self, detector):
        assert not detector.is_english(
            "das Paket ist pünktlich angekommen und alles war gut")

    def test_undetectable_rejected_not_raised(self, detector):
        assert not detector.is_english("...")

    def test_confidence_floor_respected(self, detector):
        # an impossible floor rejects everything
        assert not detector.is_english(
            "the package arrived on time", min_confidence=1.01)


class TestConstruction:
    def test_subset_of_languages(self):
        detector = LanguageDetector(["en", "de"])
        assert detector.languages == ("en", "de")

    def test_unknown_language_rejected(self):
        with pytest.raises(LanguageDetectionError):
            LanguageDetector(["en", "klingon"])

    def test_empty_language_list_rejected(self):
        with pytest.raises(LanguageDetectionError):
            LanguageDetector([])

    def test_profile_from_empty_text_rejected(self):
        with pytest.raises(LanguageDetectionError):
            LanguageProfile.from_text("xx", "12345 !!!")


class TestCharNgrams:
    def test_orders_counted(self):
        counts = char_ngrams(" ab ", orders=(1, 2))
        assert counts["a"] == 1
        assert counts["ab"] == 1
        assert counts[" a"] == 1

    def test_short_text_skips_long_orders(self):
        counts = char_ngrams("ab", orders=(5,))
        assert len(counts) == 0


def test_module_level_helper():
    assert detect_language(
        "one more plain english sentence to finish") == "en"
