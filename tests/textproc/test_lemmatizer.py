"""Unit tests for the rule-based lemmatizer (repro.textproc.lemmatizer)."""

import pytest

from repro.textproc.lemmatizer import lemmatize, lemmatize_text, \
    lemmatize_word


class TestIrregularVerbs:
    @pytest.mark.parametrize("form,lemma", [
        ("am", "be"), ("are", "be"), ("is", "be"), ("was", "be"),
        ("were", "be"), ("been", "be"),
    ])
    def test_to_be_paper_example(self, form, lemma):
        # the paper's own example: am, are, is -> be
        assert lemmatize_word(form) == lemma

    @pytest.mark.parametrize("form,lemma", [
        ("went", "go"), ("gone", "go"),
        ("bought", "buy"), ("sold", "sell"),
        ("wrote", "write"), ("written", "write"),
        ("thought", "think"), ("took", "take"),
        ("said", "say"), ("got", "get"),
    ])
    def test_common_irregulars(self, form, lemma):
        assert lemmatize_word(form) == lemma

    def test_case_insensitive(self):
        assert lemmatize_word("WAS") == "be"


class TestIrregularNouns:
    @pytest.mark.parametrize("form,lemma", [
        ("men", "man"), ("women", "woman"), ("children", "child"),
        ("people", "person"), ("mice", "mouse"), ("criteria",
        "criterion"),
    ])
    def test_irregular_plurals(self, form, lemma):
        assert lemmatize_word(form) == lemma


class TestIrregularAdjectives:
    @pytest.mark.parametrize("form,lemma", [
        ("better", "good"), ("best", "good"),
        ("worse", "bad"), ("worst", "bad"),
    ])
    def test_suppletive_comparatives(self, form, lemma):
        assert lemmatize_word(form) == lemma


class TestRegularPlurals:
    @pytest.mark.parametrize("form,lemma", [
        ("vendors", "vendor"), ("markets", "market"),
        ("parties", "party"), ("boxes", "box"),
        ("churches", "church"), ("wishes", "wish"),
    ])
    def test_plural_stripping(self, form, lemma):
        assert lemmatize_word(form) == lemma

    @pytest.mark.parametrize("word", ["bus", "gas", "news", "series",
                                      "this", "his", "always"])
    def test_protected_words_unchanged(self, word):
        assert lemmatize_word(word) == word


class TestIngForms:
    @pytest.mark.parametrize("form,lemma", [
        ("running", "run"),       # doubled consonant
        ("shipping", "ship"),
        ("making", "make"),       # silent-e restoration
        ("talking", "talk"),
        ("asking", "ask"),
    ])
    def test_ing_stripping(self, form, lemma):
        assert lemmatize_word(form) == lemma

    @pytest.mark.parametrize("word", ["thing", "king", "morning",
                                      "nothing", "during"])
    def test_ing_lookalikes_unchanged(self, word):
        assert lemmatize_word(word) == word


class TestEdForms:
    @pytest.mark.parametrize("form,lemma", [
        ("walked", "walk"),
        ("stopped", "stop"),      # doubled consonant
        ("carried", "carry"),     # -ied -> -y
        ("ordered", "order"),
    ])
    def test_ed_stripping(self, form, lemma):
        assert lemmatize_word(form) == lemma

    @pytest.mark.parametrize("word", ["red", "need", "speed",
                                      "hundred", "sacred"])
    def test_ed_lookalikes_unchanged(self, word):
        assert lemmatize_word(word) == word


class TestComparatives:
    @pytest.mark.parametrize("form,lemma", [
        ("happier", "happy"), ("happiest", "happy"),
        ("funnier", "funny"),
    ])
    def test_y_comparatives(self, form, lemma):
        assert lemmatize_word(form) == lemma

    @pytest.mark.parametrize("word", ["never", "other", "under",
                                      "vendor", "water"])
    def test_er_lookalikes_unchanged(self, word):
        assert lemmatize_word(word) == word


class TestEdgeCases:
    def test_empty_string(self):
        assert lemmatize_word("") == ""

    def test_short_words_untouched(self):
        assert lemmatize_word("as") == "as"
        assert lemmatize_word("its") == "its"

    def test_unknown_word_passthrough(self):
        assert lemmatize_word("blockchain") == "blockchain"

    def test_conservative_on_gibberish(self):
        # no vowel in stem: do not strip
        assert lemmatize_word("bcds") == "bcds"


class TestListAndTextHelpers:
    def test_lemmatize_list_preserves_order(self):
        assert lemmatize(["was", "running", "vendors"]) == \
            ["be", "run", "vendor"]

    def test_lemmatize_text_joins_words(self):
        assert lemmatize_text("He was running!") == "he be run"

    def test_idempotent(self):
        once = lemmatize_word("running")
        assert lemmatize_word(once) == once
