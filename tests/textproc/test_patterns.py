"""Unit tests for the polishing regex library (repro.textproc.patterns)."""

import pytest

from repro.textproc import patterns


class TestNormalizeUrls:
    def test_full_url_reduced_to_hostname(self):
        out = patterns.normalize_urls(
            "see https://www.reddit.com/r/bitcoin?ref=1 for details")
        assert out == "see reddit.com for details"

    def test_bare_www_url(self):
        assert patterns.normalize_urls("go to www.example.com/page") == \
            "go to example.com"

    def test_onion_address(self):
        out = patterns.normalize_urls(
            "market at http://lchudifyeqm4ldjj.onion/forum")
        assert out == "market at lchudifyeqm4ldjj.onion"

    def test_path_and_query_removed(self):
        out = patterns.normalize_urls(
            "https://imgur.com/a/xyz123?x=1&y=2")
        assert out == "imgur.com"

    def test_dotted_abbreviations_untouched(self):
        text = "use this e.g. when needed, i.e. always"
        assert patterns.normalize_urls(text) == text

    def test_hostname_lowercased(self):
        assert patterns.normalize_urls("HTTP://WWW.GitHub.COM/x") == \
            "github.com"

    def test_multiple_urls(self):
        out = patterns.normalize_urls(
            "a https://a.com/1 b https://b.org/2 c")
        assert out == "a a.com b b.org c"

    def test_text_without_urls_unchanged(self):
        text = "no links here at all"
        assert patterns.normalize_urls(text) == text


class TestMaskEmails:
    def test_simple_email(self):
        assert patterns.mask_emails("mail me at john@example.com") == \
            "mail me at _mail_"

    def test_email_with_plus_and_dots(self):
        out = patterns.mask_emails("x first.last+tag@sub.domain.org y")
        assert out == "x _mail_ y"

    def test_multiple_emails(self):
        out = patterns.mask_emails("a@b.com and c@d.net")
        assert out == "_mail_ and _mail_"

    def test_no_email_unchanged(self):
        text = "the @ sign alone is not an email"
        assert patterns.mask_emails(text) == text

    def test_tag_matches_paper(self):
        assert patterns.EMAIL_TAG == "_mail_"


class TestStripEmojis:
    def test_basic_emoji_removed(self):
        assert patterns.strip_emojis("nice 😀 work") == "nice  work"

    def test_emoji_runs_removed(self):
        assert patterns.strip_emojis("wow 🔥🔥🔥") == "wow "

    def test_flags_removed(self):
        assert patterns.strip_emojis("from 🇨🇦 with love") == \
            "from  with love"

    def test_ascii_emoticons_kept(self):
        text = "classic :) and :( stay"
        assert patterns.strip_emojis(text) == text

    def test_plain_text_unchanged(self):
        text = "ordinary text, nothing special"
        assert patterns.strip_emojis(text) == text


class TestStripPgp:
    PGP = ("-----BEGIN PGP PUBLIC KEY BLOCK-----\n"
           "mQENBFxyz...\nabcd\n"
           "-----END PGP PUBLIC KEY BLOCK-----")

    def test_block_removed(self):
        out = patterns.strip_pgp_blocks(f"before\n{self.PGP}\nafter")
        assert "PGP" not in out
        assert "before" in out and "after" in out

    def test_intro_line_removed(self):
        text = f"trust me.\nmy PGP key:\n{self.PGP}"
        out = patterns.strip_pgp_blocks(text)
        assert "my PGP key" not in out
        assert "trust me." in out

    def test_signature_block_removed(self):
        block = ("-----BEGIN PGP SIGNATURE-----\nxyz\n"
                 "-----END PGP SIGNATURE-----")
        assert patterns.strip_pgp_blocks(block).strip() == ""

    def test_mismatched_kinds_not_merged(self):
        # END of a different kind must not close a block
        text = ("-----BEGIN PGP PUBLIC KEY BLOCK-----\nxyz\n"
                "-----END PGP SIGNATURE-----")
        assert "BEGIN" in patterns.strip_pgp_blocks(text)

    def test_plain_text_unchanged(self):
        text = "I signed the message, key on my profile"
        assert patterns.strip_pgp_blocks(text) == text


class TestStripQuotes:
    def test_markdown_quote_removed(self):
        out = patterns.strip_quotes("> quoted wisdom\nmy own reply")
        assert "quoted wisdom" not in out
        assert "my own reply" in out

    def test_bbcode_quote_removed(self):
        out = patterns.strip_quotes(
            "[quote=alice]their words[/quote]\nmy words")
        assert "their words" not in out
        assert "my words" in out

    def test_bbcode_multiline(self):
        out = patterns.strip_quotes(
            "[quote]line one\nline two[/quote]ok")
        assert out.strip() == "ok"

    def test_indented_quote_removed(self):
        out = patterns.strip_quotes("   > indented quote\nreply")
        assert "indented" not in out

    def test_greater_than_mid_line_kept(self):
        text = "5 > 3 is true"
        assert patterns.strip_quotes(text) == text


class TestStripEditMarkers:
    def test_edit_by_removed(self):
        out = patterns.strip_edit_markers(
            "real content\nEdit by johndoe: fixed typo")
        assert "johndoe" not in out
        assert "real content" in out

    def test_edit_prefix_stripped_text_kept(self):
        out = patterns.strip_edit_markers("EDIT: also this part")
        assert "also this part" in out
        assert "EDIT" not in out

    def test_numbered_edit_prefix(self):
        out = patterns.strip_edit_markers("edit 2: more info")
        assert out.strip() == "more info"

    def test_word_edited_inside_sentence_kept(self):
        text = "I edited the wiki page yesterday"
        assert patterns.strip_edit_markers(text) == text


class TestStripLongWords:
    def test_long_word_dropped(self):
        long_word = "x" * 40
        assert patterns.strip_long_words(f"keep {long_word} this") == \
            "keep this"

    def test_boundary_34_kept(self):
        word = "y" * 34
        assert word in patterns.strip_long_words(f"a {word} b")

    def test_boundary_35_dropped(self):
        word = "y" * 35
        assert word not in patterns.strip_long_words(f"a {word} b")

    def test_custom_limit(self):
        assert patterns.strip_long_words("abc abcd", max_length=3) == "abc"


class TestCollapseWhitespace:
    def test_runs_collapsed(self):
        assert patterns.collapse_whitespace("a   b\t\tc\n\nd") == "a b c d"

    def test_ends_trimmed(self):
        assert patterns.collapse_whitespace("  hi  ") == "hi"

    def test_empty_string(self):
        assert patterns.collapse_whitespace("") == ""
