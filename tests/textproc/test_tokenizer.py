"""Unit tests for the tokenizer (repro.textproc.tokenizer)."""

import pytest

from repro.textproc import tokenizer as tok


class TestIterTokens:
    def test_words_and_punct_split(self):
        tokens = tok.tokenize("Hello, world!")
        assert [(t.text, t.kind) for t in tokens] == [
            ("Hello", tok.WORD), (",", tok.PUNCT),
            ("world", tok.WORD), ("!", tok.PUNCT)]

    def test_contraction_kept_whole(self):
        tokens = tok.tokenize("don't stop")
        assert tokens[0].text == "don't"
        assert tokens[0].kind == tok.WORD

    def test_hyphenated_word_kept_whole(self):
        tokens = tok.tokenize("state-of-the-art stuff")
        assert tokens[0].text == "state-of-the-art"

    def test_number_token(self):
        tokens = tok.tokenize("buy 25 grams")
        kinds = [t.kind for t in tokens]
        assert kinds == [tok.WORD, tok.NUMBER, tok.WORD]

    def test_decimal_number_whole(self):
        tokens = tok.tokenize("price 3.50 total")
        assert tokens[1].text == "3.50"
        assert tokens[1].kind == tok.NUMBER

    def test_ellipsis_single_token(self):
        tokens = tok.tokenize("well... maybe")
        assert any(t.text == "..." and t.kind == tok.PUNCT
                   for t in tokens)

    def test_bang_run_single_token(self):
        tokens = tok.tokenize("no way?!")
        assert any(t.text == "?!" for t in tokens)

    def test_symbol_kind(self):
        tokens = tok.tokenize("cost $5")
        assert ("$", tok.SYMBOL) in [(t.text, t.kind) for t in tokens]

    def test_empty_input(self):
        assert tok.tokenize("") == []

    def test_whitespace_only(self):
        assert tok.tokenize("   \n\t ") == []


class TestWordTokens:
    def test_lowercased_by_default(self):
        assert tok.word_tokens("The QUICK Fox") == ["the", "quick", "fox"]

    def test_case_preserved_on_request(self):
        assert tok.word_tokens("The Fox", lowercase=False) == \
            ["The", "Fox"]

    def test_punct_excluded(self):
        assert tok.word_tokens("yes, no; maybe!") == \
            ["yes", "no", "maybe"]


class TestCountWords:
    def test_basic_count(self):
        assert tok.count_words("one two three") == 3

    def test_punct_not_counted(self):
        assert tok.count_words("one, two... three!!") == 3

    def test_numbers_not_counted_as_words(self):
        assert tok.count_words("I have 3 dogs") == 3

    def test_empty(self):
        assert tok.count_words("") == 0


class TestDistinctWordRatio:
    def test_all_distinct(self):
        assert tok.distinct_word_ratio("a b c d") == 1.0

    def test_repeated_spam(self):
        ratio = tok.distinct_word_ratio("buy now " * 10)
        assert ratio == pytest.approx(2 / 20)

    def test_case_insensitive(self):
        assert tok.distinct_word_ratio("Yes yes YES") == \
            pytest.approx(1 / 3)

    def test_no_words_returns_zero(self):
        assert tok.distinct_word_ratio("!!! ... ???") == 0.0


class TestSentences:
    def test_splits_on_terminators(self):
        out = tok.sentences("First one. Second one! Third?")
        assert out == ["First one.", "Second one!", "Third?"]

    def test_single_sentence(self):
        assert tok.sentences("no terminator here") == \
            ["no terminator here"]

    def test_empty(self):
        assert tok.sentences("") == []


class TestToken:
    def test_lower_helper(self):
        token = tok.Token("HeLLo", tok.WORD)
        assert token.lower() == "hello"

    def test_frozen(self):
        token = tok.Token("x", tok.WORD)
        with pytest.raises(AttributeError):
            token.text = "y"
